"""Incremental solving sessions: push/pop scopes over one persistent engine.

A :class:`Session` is the native counterpart of SMT-LIB's assertion
stack: ``push``/``pop``/``reset-assertions`` manipulate scopes, and every
``check-sat`` answers for the conjunction of the *live* assertions.

The point of a session -- and the reason clients like the termination
driver stream fifty queries through one -- is that bounded scopes are
*retractable assumption slices* over one persistent SAT solver:

- Each asserted term is bit-blasted exactly once
  (:meth:`~repro.bv.bitblast.BitBlaster.blast_bool` yields a Tseitin
  output literal; passing that literal as a SAT *assumption* is
  equivalent to asserting the term as a unit clause).
- Popping a scope simply drops its literals from the next check's
  assumption set; the CNF stays, so re-pushing the same formula later
  costs nothing to encode.
- Learned clauses are consequences of the clause database alone (never
  of the assumptions), so they soundly survive every pop.
- A conflict at decision level 0 is permanent: once the hard clauses
  are contradictory, every later check answers ``unsat`` without a
  search (see :meth:`repro.sat.solver.SatSolver.okay`).

Sessions over unbounded theories fall back to a scratch
:func:`~repro.solver.facade.solve_script` of the flattened scope stack
-- byte-identical to the non-incremental path (this is also the
differential-fuzzing oracle in ``tests/test_session.py``). The
scope-aware STAUB lane lives in :mod:`repro.core.session`.

Caching uses :class:`~repro.cache.keys.ScopeKeyChain` prefix digests, so
two sessions reaching the same scope stack through any interleaving of
push/pop share entries. Resource exhaustion and injected chaos faults
degrade to structured ``unknown`` results that never poison the cache
and never wedge the session.
"""

from repro import cache as solve_cache
from repro import guard, telemetry
from repro.bv.bitblast import BitBlaster
from repro.bv.solver import BLAST_WORK_PER_CLAUSE
from repro.cache.keys import ScopeKeyChain, assertion_digest
from repro.cache.store import entry_from_result, result_from_entry
from repro.errors import (
    BudgetExceeded,
    SessionError,
    SmtLibError,
    UnsupportedLogicError,
)
from repro.guard import chaos
from repro.guard.chaos import ChaosCrash
from repro.sat.solver import SatSolver
from repro.smtlib.script import Script
from repro.smtlib.sorts import BOOL
from repro.solver import costs
from repro.solver.facade import solve_script
from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult
from repro.telemetry.stats import unified_stats


class _BoundedBackend:
    """One persistent blast-once SAT engine; scopes are assumption slices.

    The backend never forgets: popped assertions keep their CNF (inert
    without their assumption literal) and the solver keeps its learned
    clauses. ``reset-assertions`` keeps the backend too -- the term
    cache makes re-asserting previously seen formulas free.
    """

    def __init__(self):
        self.blaster = BitBlaster()
        # Structure sharing: the solver watches the blaster's arena
        # blocks in place; _sync attaches new blocks without copying.
        self.solver = SatSolver(cnf=self.blaster.cnf)
        self._synced = 0
        self._root_unsat = False
        self._literals = {}  # term tid -> assumption literal
        self.checks = 0
        #: After an assumption-driven UNSAT check: the live terms whose
        #: assumption literals appear in the final conflict (the
        #: assertion-level unsat core). None after any other outcome --
        #: in particular after the *root*-UNSAT fast path, whose empty
        #: conflict has no attributable assertion subset.
        self.last_core_terms = None

    @property
    def permanently_unsat(self):
        """True once the hard (assumption-free) clauses are contradictory."""
        return self._root_unsat or not self.solver.okay()

    def literal(self, term):
        """The retractable assumption literal standing for ``term``."""
        literal = self._literals.get(term.tid)
        if literal is None:
            literal = self._literals[term.tid] = self.blaster.blast_bool(term)
        return literal

    def _sync(self):
        """Attach clauses produced since the previous check in place."""
        cnf = self.blaster.cnf
        added = len(cnf) - self._synced
        if added:
            if not self.solver.attach(start=self._synced) and not self._root_unsat:
                self._root_unsat = True
            self._synced = len(cnf)
        if self.solver.num_vars < cnf.num_vars:
            self.solver.grow_to(cnf.num_vars)
        return added

    def check(self, scopes, declarations, budget):
        """Solve the live stack under this check's assumption slices."""
        for name, sort in declarations.items():
            if not (sort.is_bool or sort.is_bv):
                raise UnsupportedLogicError(
                    f"bounded session cannot handle variable {name} of sort {sort}"
                )
        self.last_core_terms = None
        if guard.active().interrupted("session"):
            return SolveResult(
                UNKNOWN, None, 0, engine="bv-session", stats=unified_stats()
            )
        self.checks += 1
        clauses_before = len(self.blaster.cnf.clauses)
        assumptions = []
        owners = {}  # assumption literal -> live terms it stands for
        seen = set()
        for scope in scopes:
            for term in scope:
                literal = self.literal(term)
                if literal not in seen:
                    seen.add(literal)
                    assumptions.append(literal)
                owners.setdefault(literal, []).append(term)
        new_clauses = len(self.blaster.cnf.clauses) - clauses_before
        blast_work = BLAST_WORK_PER_CLAUSE * new_clauses
        if new_clauses:
            with telemetry.span("blast", incremental=True) as span:
                span.add_work(blast_work)
        base_work = self.solver.work()
        self._sync()
        reused = self.solver.learned_count()
        before = self.solver.stats.as_dict()
        if self.permanently_unsat:
            # Permanent root UNSAT: answer without a search. No amount of
            # popping can retract a hard contradiction, so every check
            # from here on is deterministic and (nearly) free.
            telemetry.counter_add("session.root_unsat")
            raw = blast_work + (self.solver.work() - base_work)
            return SolveResult(
                UNSAT,
                None,
                costs.from_sat(raw),
                engine="bv-session",
                stats=self._stats(before, assumptions, reused, new_clauses,
                                  root_conflict=True),
            )
        sat_budget = None
        if budget is not None:
            sync_work = self.solver.work() - base_work
            sat_budget = max(0, budget - blast_work - sync_work)
        status = self.solver.solve(assumptions=assumptions, max_work=sat_budget)
        if status == UNSAT:
            # final_conflict() holds the negations of the failing
            # assumption literals; an empty conflict (root-level UNSAT
            # discovered during this search) yields no core.
            failed = set(self.solver.final_conflict())
            core = tuple(
                term
                for literal in assumptions
                if -literal in failed
                for term in owners[literal]
            )
            self.last_core_terms = core or None
        model = None
        if status == SAT:
            sat_model = self.solver.model()
            model = {
                name: self.blaster.extract_value(name, sort, sat_model)
                for name, sort in declarations.items()
            }
        raw = blast_work + (self.solver.work() - base_work)
        return SolveResult(
            status,
            model,
            costs.from_sat(raw),
            engine="bv-session",
            stats=self._stats(before, assumptions, reused, new_clauses),
        )

    def _stats(self, before, assumptions, reused, new_clauses, root_conflict=False):
        """Uniform stats for one check, with solver counters as deltas."""
        after = self.solver.stats.as_dict()
        delta = {key: after[key] - before[key] for key in after}
        return unified_stats(
            cnf_vars=self.blaster.cnf.num_vars,
            cnf_clauses=len(self.blaster.cnf.clauses),
            assumed=len(assumptions),
            reused_clauses=reused,
            new_clauses=new_clauses,
            root_conflict=root_conflict,
            **delta,
        )


class Session:
    """An SMT-LIB assertion-stack session over the native solver stack.

    Args:
        profile: solver profile for unbounded checks.
        budget: default unified work budget per ``check-sat``.
        cache: a :class:`~repro.cache.SolveCache` overriding the active
            process-wide cache.

    Declarations are *global* (they survive ``pop`` and
    ``reset-assertions``), matching SMT-LIB's
    ``:global-declarations true`` -- the only declaration semantics this
    fragment supports, documented in the parser.
    """

    def __init__(self, profile="zorro", budget=None, cache=None):
        self.profile = profile
        self.budget = budget
        self.cache = cache
        self.declarations = {}
        self._scopes = [[]]
        self._chain = ScopeKeyChain()
        self._backend = None
        self._digest_memo = {}  # term tid -> canonical assertion digest
        self.counters = {
            "push": 0,
            "pop": 0,
            "reset": 0,
            "check_sat": 0,
            "cache_hits": 0,
            "core_hits": 0,
            "backend_checks": 0,
            "fallback_checks": 0,
            "work": 0,
        }

    # -- scope stack -------------------------------------------------------

    @property
    def depth(self):
        """Number of pushed scopes (the root scope is depth 0)."""
        return len(self._scopes) - 1

    def push(self, count=1):
        if count < 0:
            raise SessionError(f"push takes a non-negative count, got {count}")
        for _ in range(count):
            self._scopes.append([])
        self._chain.push(count)
        self.counters["push"] += count
        telemetry.counter_add("session.push", count)

    def pop(self, count=1):
        if count < 0:
            raise SessionError(f"pop takes a non-negative count, got {count}")
        if count > self.depth:
            raise SessionError(
                f"pop {count} below assertion-stack depth {self.depth}"
            )
        if count:
            del self._scopes[len(self._scopes) - count:]
            self._chain.pop(count)
        self.counters["pop"] += count
        telemetry.counter_add("session.pop", count)

    def reset_assertions(self):
        """Drop every scope and every assertion; keep declarations and
        the backend (its term cache makes re-assertion free)."""
        self._scopes = [[]]
        self._chain.reset()
        self.counters["reset"] += 1
        telemetry.counter_add("session.reset")

    def declare(self, name, sort):
        existing = self.declarations.get(name)
        if existing is None:
            self.declarations[name] = sort
        elif existing is not sort:
            raise SmtLibError(
                f"variable {name} redeclared with sort {sort}, was {existing}"
            )

    def assert_term(self, term):
        """Assert a boolean term in the current (top) scope."""
        if term.sort is not BOOL:
            raise SmtLibError(
                f"asserted term has sort {term.sort}, expected Bool"
            )
        for name, var in term.variables().items():
            self.declare(name, var.sort)
        self._scopes[-1].append(term)
        self._chain.add_assertion(term)

    def assertions(self):
        """The live assertions, outermost scope first."""
        return [term for scope in self._scopes for term in scope]

    def flattened_script(self):
        """The current stack as one flat script (the scratch-equivalent
        question; also what the differential fuzzer re-solves)."""
        script = Script(declarations=self.declarations, assertions=self.assertions())
        script.logic = script.infer_logic()
        return script

    # -- solving -----------------------------------------------------------

    @property
    def _bounded(self):
        return all(sort.is_bounded for sort in self.declarations.values())

    def check_sat(self, budget=None):
        """Answer sat/unsat/unknown for the live assertion stack.

        Bounded stacks run on the persistent assumption-slice backend;
        unbounded ones fall back to a scratch solve of the flattened
        script (identical to the non-incremental path, cached under its
        canonical key by the facade itself).
        """
        budget = self.budget if budget is None else budget
        self.counters["check_sat"] += 1
        telemetry.counter_add("session.check_sat")
        if not self._bounded:
            self.counters["fallback_checks"] += 1
            result = solve_script(
                self.flattened_script(),
                budget=budget,
                profile=self.profile,
                cache=self.cache,
            )
            self.counters["work"] += result.work
            return result

        store = self.cache if self.cache is not None else solve_cache.get_cache()
        key = None
        if store is not None:
            key = self._chain.key(
                self.declarations, profile=self.profile, budget=budget
            )
            entry = store.get(key)
            if entry is not None:
                self.counters["cache_hits"] += 1
                telemetry.counter_add("session.cache_hit")
                return result_from_entry(entry)
            if store.has_cores():
                # Scope-prefix miss: subsumption works on the *flattened*
                # digest set, so a core learned under any scope chain (or
                # from a flat script) can still answer this stack.
                digests = self._live_digests()
                if digests and store.find_core(digests, kind="session") is not None:
                    self.counters["core_hits"] += 1
                    telemetry.counter_add("session.core_hit")
                    return SolveResult(
                        UNSAT,
                        None,
                        0,
                        engine="core-reuse",
                        stats=unified_stats(core_reuse=True),
                        cached=True,
                    )

        result, tainted = self._check_bounded(budget)
        self.counters["backend_checks"] += 1
        self.counters["work"] += result.work
        if store is not None and result.status != UNKNOWN and not tainted:
            try:
                store.put(key, entry_from_result(result), kind="session")
            except TypeError:
                pass  # model value with no JSON encoding: don't cache it
            if result.status == UNSAT and self._backend is not None:
                core_terms = self._backend.last_core_terms
                if core_terms:
                    store.add_core(
                        frozenset(self._digest(term) for term in core_terms),
                        kind="session",
                    )
        return result

    def _digest(self, term):
        digest = self._digest_memo.get(term.tid)
        if digest is None:
            digest = self._digest_memo[term.tid] = assertion_digest(term)
        return digest

    def _live_digests(self):
        """Canonical digest set of the flattened live assertion stack."""
        return frozenset(
            self._digest(term) for scope in self._scopes for term in scope
        )

    def _check_bounded(self, budget):
        """One check on the persistent backend, inside a fresh governor.

        Returns ``(result, tainted)`` where ``tainted`` marks results
        shaped by wall-clock exhaustion or injected faults -- those must
        never be cached (they would poison every warm rerun).
        """
        backend = self._backend
        if backend is None:
            backend = self._backend = _BoundedBackend()
        outer = guard.active()
        governor = guard.ResourceBudget(
            work=budget, parent=outer if outer is not guard.NULL_GOVERNOR else None
        )
        plan = chaos.active()
        injected_before = plan.total_injected if plan is not None else 0
        with telemetry.span("session.check", depth=self.depth) as span:
            with guard.activate(governor):
                try:
                    chaos.inject(
                        "session.check_sat", salt=str(self.depth), governor=governor
                    )
                    result = backend.check(self._scopes, self.declarations, budget)
                except ChaosCrash:
                    telemetry.counter_add("session.chaos_crash")
                    result = SolveResult(
                        UNKNOWN,
                        None,
                        0,
                        engine="bv-session",
                        stats=unified_stats(
                            gave_up="session", gave_up_reason="chaos-crash"
                        ),
                    )
                except BudgetExceeded as error:
                    # Safety net, mirroring the facade: exhaustion is a
                    # structured unknown, and the session stays usable.
                    layer = getattr(error, "layer", None) or "session"
                    governor.note_give_up(layer, "work")
                    result = SolveResult(
                        UNKNOWN,
                        None,
                        getattr(error, "spent", 0) or 0,
                        engine="bv-session",
                        stats=unified_stats(
                            gave_up=layer, gave_up_reason=governor.reason
                        ),
                    )
            span.set_attr("status", result.status)
            span.settle(result.work)
        if governor.work_limit is not None:
            governor.spent += result.work
        if governor.gave_up_layer is not None:
            result.stats.setdefault("gave_up", governor.gave_up_layer)
            result.stats.setdefault("gave_up_reason", governor.reason)
        injected = plan is not None and plan.total_injected != injected_before
        # "parent" covers an enclosing governor's deadline or cancellation
        # tripping the per-check budget from outside.
        tainted = injected or governor.reason in ("deadline", "cancelled", "parent")
        return result, tainted


def open_session(profile="zorro", budget=None, cache=None):
    """Convenience constructor mirroring :func:`solve_script`'s surface."""
    return Session(profile=profile, budget=budget, cache=cache)


def run_script_session(script, profile="zorro", budget=None, cache=None,
                       session=None):
    """Replay an incremental script's command stream on one session.

    Args:
        script: a parsed :class:`~repro.smtlib.script.Script` whose
            :attr:`~repro.smtlib.script.Script.commands` drive the
            session (push/pop/reset-assertions/assert/check-sat).
        session: an existing :class:`Session` to continue, or None for a
            fresh one.

    Returns:
        ``(results, session)`` -- one
        :class:`~repro.solver.result.SolveResult` per ``check-sat``, in
        script order.
    """
    if session is None:
        session = Session(profile=profile, budget=budget, cache=cache)
    results = []
    for command in script.commands:
        name = command.name
        if name in ("declare-fun", "declare-const"):
            session.declare(command.args[0], command.args[1])
        elif name == "assert":
            session.assert_term(command.args[0])
        elif name == "push":
            session.push(command.args[0])
        elif name == "pop":
            session.pop(command.args[0])
        elif name == "reset-assertions":
            session.reset_assertions()
        elif name == "check-sat":
            results.append(session.check_sat())
        # set-logic / set-info / get-model / exit: no session effect.
    return results, session
