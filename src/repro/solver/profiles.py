"""Solver profiles: the reproduction's counterparts of Z3 and CVC5.

A profile selects which conjunction-level engine handles each unbounded
logic, mirroring how the two industrial solvers differ most in their
nonlinear integer strategies:

- ``zorro`` (Z3-like): branch-and-prune NIA with interval contraction --
  strong propagation, moderate search.
- ``corvus`` (CVC5-like): shell-enumeration NIA -- model search whose cost
  grows with solution magnitude, so it times out on many unbounded
  instances that become easy after theory arbitrage (the paper's Table 2
  shows CVC5 gaining thousands of tractability improvements).

Both profiles share the simplex LRA/LIA engines, the ICP NRA engine, and
the bit-blasting bounded back end.
"""

from repro.arith.lia import LiaSolver
from repro.arith.nia import NiaSolver
from repro.arith.nia_enum import NiaEnumSolver
from repro.arith.nra import NraSolver
from repro.errors import SolverError


class SolverProfile:
    """A named selection of theory engines.

    Attributes:
        name: profile identifier (``"zorro"`` or ``"corvus"``).
        description: one-line summary for reports.
    """

    def __init__(self, name, description, nia_engine, nra_epsilon_bits=12):
        self.name = name
        self.description = description
        self._nia_engine = nia_engine
        self.nra_epsilon_bits = nra_epsilon_bits

    def engine_for(self, logic):
        """The conjunction-engine factory for an unbounded logic."""
        if logic in ("QF_LIA", "QF_LRA"):
            return LiaSolver
        if logic == "QF_NIA":
            return self._nia_engine
        if logic == "QF_NRA":
            from fractions import Fraction

            def make(literals, declarations):
                return NraSolver(
                    literals,
                    declarations,
                    epsilon=Fraction(1, 1 << self.nra_epsilon_bits),
                )

            return make
        raise SolverError(f"profile {self.name} has no engine for {logic}")

    def __repr__(self):
        return f"SolverProfile({self.name})"


PROFILES = {
    "zorro": SolverProfile(
        "zorro",
        "branch-and-prune nonlinear engine (Z3-like)",
        NiaSolver,
    ),
    "corvus": SolverProfile(
        "corvus",
        "shell-enumeration nonlinear engine (CVC5-like)",
        NiaEnumSolver,
    ),
}


def get_profile(name):
    """Look up a profile by name.

    Raises:
        SolverError: unknown profile name.
    """
    profile = PROFILES.get(name)
    if profile is None:
        raise SolverError(
            f"unknown solver profile {name!r}; available: {sorted(PROFILES)}"
        )
    return profile
