"""The native SMT solver stack and its public façade.

The paper evaluates against two industrial solvers (Z3 and CVC5); this
package provides the reproduction's counterparts as two *profiles* of one
native stack (see DESIGN.md):

- ``zorro`` -- contraction-based nonlinear engine (Z3-like behaviour);
- ``corvus`` -- enumeration-based nonlinear engine (CVC5-like: weaker on
  unbounded nonlinear input, hence more room for theory arbitrage).

Entry points:

- :func:`solve_script` -- solve any supported script under a profile.
- :func:`refine_script` -- theory arbitrage with width refinement.
- :class:`Session` / :func:`open_session` -- incremental push/pop
  sessions over one persistent engine.
- :func:`run_script_session` -- replay an incremental SMT-LIB script.
- :class:`SolveResult` -- status + model + deterministic work.
- :data:`PROFILES` -- the registered solver profiles.
"""

from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult
from repro.solver.profiles import PROFILES, SolverProfile, get_profile
from repro.solver.facade import open_session, refine_script, solve_script
from repro.solver.session import Session, run_script_session

__all__ = [
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "Session",
    "SolveResult",
    "PROFILES",
    "SolverProfile",
    "get_profile",
    "open_session",
    "run_script_session",
    "solve_script",
    "refine_script",
]
