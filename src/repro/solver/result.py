"""Unified solve results and status constants."""

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class SolveResult:
    """Outcome of solving one script.

    Attributes:
        status: ``"sat"`` / ``"unsat"`` / ``"unknown"`` (budget exhausted).
        model: name -> value mapping when sat (ints, Fractions, bools,
            BVValue); None otherwise.
        work: deterministic unified work units spent -- the virtual clock
            every experiment reports (see :mod:`repro.solver.costs`).
        engine: which engine produced the result (e.g. ``"nia"``, ``"bv"``).
        stats: uniform statistics dict (see
            :mod:`repro.telemetry.stats`); every engine fills the same
            key set.
        cached: True when the result was served from a solve cache
            rather than a fresh engine run (``work`` is then the work of
            the original solve, not of the lookup).
        detail: deprecated alias for ``stats``.
    """

    __slots__ = ("status", "model", "work", "engine", "stats", "cached")

    def __init__(
        self, status, model=None, work=0, engine="", stats=None, detail=None, cached=False
    ):
        self.status = status
        self.model = model
        self.work = work
        self.engine = engine
        self.cached = cached
        # ``detail=`` is the pre-telemetry spelling; accept it so old
        # callers keep working, but the canonical attribute is ``stats``.
        self.stats = stats if stats is not None else (detail if detail is not None else {})

    @property
    def detail(self):
        """Deprecated alias for :attr:`stats`."""
        return self.stats

    @property
    def is_sat(self):
        return self.status == SAT

    @property
    def is_unsat(self):
        return self.status == UNSAT

    @property
    def is_unknown(self):
        return self.status == UNKNOWN

    def __repr__(self):
        return f"SolveResult({self.status}, work={self.work}, engine={self.engine})"
