"""DPLL(T): CDCL over the boolean skeleton + theory conjunction checks.

The classic lazy-SMT architecture: theory atoms are abstracted to fresh
SAT variables, the boolean structure is Tseitin-encoded, and each boolean
model's implied set of theory literals is checked by a conjunction-level
theory solver. Theory-inconsistent assignments are blocked with a clause
and the loop continues.

Most benchmark constraints are conjunctions, in which case the loop
degenerates to a single theory call -- but full boolean structure
(disjunctions of atoms, ``ite``, ``xor``) is supported, which the
generated "industrial" workloads exercise.
"""

from repro import guard, telemetry
from repro.errors import SolverError
from repro.sat.solver import SAT as SAT_RESULT
from repro.sat.solver import UNKNOWN as SAT_UNKNOWN
from repro.sat.solver import SatSolver
from repro.smtlib import build
from repro.smtlib.sorts import BOOL
from repro.smtlib.terms import Op
from repro.solver.result import SAT, UNKNOWN, UNSAT, SolveResult
from repro.telemetry.stats import merge_stats, unified_stats


class TheoryOutcome(tuple):
    """The DPLL(T) result: unpacks like the historical 4-tuple.

    ``status, model, theory_work, sat_work = solve_with_theory(...)``
    keeps working; the extra :attr:`stats` attribute carries the uniform
    counter dict (skeleton CDCL counters + theory-engine counters +
    ``theory_rounds``).
    """

    def __new__(cls, status, model, theory_work, sat_work, stats=None):
        outcome = super().__new__(cls, (status, model, theory_work, sat_work))
        outcome.stats = stats if stats is not None else unified_stats()
        return outcome

    @property
    def status(self):
        return self[0]

    @property
    def model(self):
        return self[1]

    @property
    def theory_work(self):
        return self[2]

    @property
    def sat_work(self):
        return self[3]

#: Boolean-structure operators: everything below these is a theory atom.
_STRUCTURE_OPS = {Op.NOT, Op.AND, Op.OR, Op.XOR, Op.IMPLIES}


def _is_structure(term):
    if term.op in _STRUCTURE_OPS:
        return True
    if term.op is Op.ITE and term.sort is BOOL:
        return True
    if term.op is Op.EQ and term.args[0].sort is BOOL:
        return True
    return False


class _Skeleton:
    """Tseitin encoding of the boolean structure over theory atoms."""

    def __init__(self):
        self.solver = SatSolver()
        self.atom_vars = {}  # atom term tid -> SAT var
        self.atoms = {}  # SAT var -> atom term
        self._cache = {}  # term tid -> SAT literal

    def _fresh(self):
        return self.solver.new_var()

    def atom_literal(self, term):
        var = self.atom_vars.get(term.tid)
        if var is None:
            var = self._fresh()
            self.atom_vars[term.tid] = var
            self.atoms[var] = term
        return var

    def encode(self, term):
        """Return a SAT literal equivalent to the boolean term."""
        cached = self._cache.get(term.tid)
        if cached is not None:
            return cached
        literal = self._encode_uncached(term)
        self._cache[term.tid] = literal
        return literal

    def _encode_uncached(self, term):
        if term.op is Op.CONST:
            # Encode constants with a forced fresh variable.
            var = self._fresh()
            self.solver.add_clause([var if term.value else -var])
            return var if term.value else -var
        if not _is_structure(term):
            return self.atom_literal(term)
        op = term.op
        if op is Op.NOT:
            return -self.encode(term.args[0])
        if op is Op.AND or op is Op.OR:
            literals = [self.encode(arg) for arg in term.args]
            out = self._fresh()
            if op is Op.AND:
                for literal in literals:
                    self.solver.add_clause([-out, literal])
                self.solver.add_clause([out] + [-l for l in literals])
            else:
                for literal in literals:
                    self.solver.add_clause([out, -literal])
                self.solver.add_clause([-out] + literals)
            return out
        if op is Op.IMPLIES:
            antecedent = self.encode(term.args[0])
            consequent = self.encode(term.args[1])
            out = self._fresh()
            self.solver.add_clause([-out, -antecedent, consequent])
            self.solver.add_clause([out, antecedent])
            self.solver.add_clause([out, -consequent])
            return out
        if op is Op.XOR:
            literal = self.encode(term.args[0])
            for arg in term.args[1:]:
                other = self.encode(arg)
                out = self._fresh()
                self.solver.add_clause([-out, literal, other])
                self.solver.add_clause([-out, -literal, -other])
                self.solver.add_clause([out, -literal, other])
                self.solver.add_clause([out, literal, -other])
                literal = out
            return literal
        if op is Op.EQ:  # boolean iff
            left = self.encode(term.args[0])
            right = self.encode(term.args[1])
            out = self._fresh()
            self.solver.add_clause([-out, -left, right])
            self.solver.add_clause([-out, left, -right])
            self.solver.add_clause([out, left, right])
            self.solver.add_clause([out, -left, -right])
            return out
        if op is Op.ITE:
            condition = self.encode(term.args[0])
            then_lit = self.encode(term.args[1])
            else_lit = self.encode(term.args[2])
            out = self._fresh()
            self.solver.add_clause([-out, -condition, then_lit])
            self.solver.add_clause([-out, condition, else_lit])
            self.solver.add_clause([out, -condition, -then_lit])
            self.solver.add_clause([out, condition, -else_lit])
            return out
        raise SolverError(f"unexpected structural operator {op}")


def solve_with_theory(script, theory_factory, budget=None, max_rounds=2000):
    """Lazy DPLL(T) loop.

    Args:
        script: the input :class:`~repro.smtlib.script.Script`.
        theory_factory: ``(literals, declarations) -> engine`` where engine
            has ``solve(budget) -> ArithResult`` and a raw-unit work field;
            the caller is responsible for unit conversion.
        budget: raw-unit budget passed through to the theory engine and
            (scaled) to the SAT skeleton.
        max_rounds: safety cap on skeleton/theory iterations.

    Returns:
        A :class:`TheoryOutcome` -- unpacks as ``(status, model,
        theory_work, sat_work)`` where theory_work is in the theory
        engine's raw units and sat_work in SAT steps; also carries a
        uniform ``stats`` dict.
    """
    skeleton = _Skeleton()
    for assertion in script.assertions:
        literal = skeleton.encode(assertion)
        skeleton.solver.add_clause([literal])

    theory_work = 0
    rounds = 0
    theory_stats = {}

    def finish(status, model):
        stats = unified_stats(**skeleton.solver.stats.as_dict())
        merge_stats(stats, theory_stats)
        stats["theory_rounds"] = rounds
        if telemetry.enabled:
            telemetry.counter_add("dpllt.rounds", rounds)
            telemetry.counter_add("dpllt.queries", 1)
        return TheoryOutcome(
            status, model, theory_work, skeleton.solver.work(), stats=stats
        )

    governor = guard.active()
    while True:
        rounds += 1
        if rounds > max_rounds:
            return finish(UNKNOWN, None)
        if governor.interrupted("dpllt"):
            return finish(UNKNOWN, None)
        sat_status = skeleton.solver.solve(max_work=budget)
        if sat_status == SAT_UNKNOWN:
            return finish(UNKNOWN, None)
        if sat_status != SAT_RESULT:
            return finish(UNSAT, None)
        sat_model = skeleton.solver.model()

        literals = []
        blocking = []
        bool_assignment = {}
        for var, atom in skeleton.atoms.items():
            value = sat_model.get(var, False)
            blocking.append(-var if value else var)
            if atom.is_var:
                bool_assignment[atom.name] = value
            else:
                literals.append(atom if value else build.Not(atom))

        remaining = None if budget is None else max(1, budget - theory_work)
        engine = theory_factory(literals, script.declarations)
        outcome = engine.solve(remaining)
        theory_work += outcome.work
        engine_stats = getattr(engine, "stats", None)
        if callable(engine_stats):
            merge_stats(theory_stats, engine_stats())

        if outcome.status == "sat":
            model = dict(outcome.model or {})
            model.update(bool_assignment)
            _complete_model(model, script)
            return finish(SAT, model)
        if outcome.status == "unknown":
            return finish(UNKNOWN, None)
        # Theory-unsat: block this boolean assignment and continue.
        if not blocking:
            return finish(UNSAT, None)
        if not skeleton.solver.add_clause(blocking):
            return finish(UNSAT, None)
        if budget is not None and theory_work >= budget:
            return finish(UNKNOWN, None)


def _complete_model(model, script):
    """Default values for variables the engines never had to mention."""
    from fractions import Fraction

    from repro.smtlib.sorts import INT, REAL
    from repro.smtlib.values import BVValue

    for name, sort in script.declarations.items():
        if name in model:
            continue
        if sort is BOOL:
            model[name] = False
        elif sort is INT:
            model[name] = 0
        elif sort is REAL:
            model[name] = Fraction(0)
        elif sort.is_bv:
            model[name] = BVValue(0, sort.width)
