"""Package version, kept separate to avoid import cycles."""

__version__ = "1.0.0"
