"""Floating-point substrate: softfloat semantics and fixed-point encoding.

- :mod:`repro.fp.softfloat` implements IEEE-754 arithmetic for arbitrary
  exponent/significand widths with round-to-nearest-even, used to give the
  SMT-LIB FP theory its semantics and to detect the paper's "semantic
  differences" (rounding, NaN, infinities).
- :mod:`repro.fp.fixedpoint` encodes real-sorted terms onto bitvectors as
  scaled fixed-point values parameterized by the (magnitude, precision)
  abstract domain -- the bounded solving target for Real constraints (see
  DESIGN.md for why this substitutes for FP bit-blasting).
"""

from repro.fp.softfloat import (
    fp_add,
    fp_div,
    fp_eq,
    fp_from_fraction,
    fp_leq,
    fp_lt,
    fp_mul,
    fp_neg,
    fp_abs,
    fp_sub,
    pack,
    unpack,
)

__all__ = [
    "fp_add",
    "fp_div",
    "fp_eq",
    "fp_from_fraction",
    "fp_leq",
    "fp_lt",
    "fp_mul",
    "fp_neg",
    "fp_abs",
    "fp_sub",
    "pack",
    "unpack",
]
