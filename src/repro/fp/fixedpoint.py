"""Value-level fixed-point arithmetic helpers.

A fixed-point datum with shape ``(M, P)`` is a signed ``(M+P)``-bit
bitvector whose integer value, divided by ``2**P``, is the represented
real. These helpers implement the value-level encode/decode and the
truncating arithmetic the term-level transformation
(:class:`repro.core.transform._RealTransformer`) compiles to circuits --
and the tests use them as the executable specification of that circuit.
"""

from fractions import Fraction

from repro.smtlib.values import BVValue


def encode(value, magnitude_bits, precision_bits):
    """Exact fixed-point image of a rational, or None if unrepresentable.

    This is phi of the real->fixed-point sort correspondence.
    """
    scaled = Fraction(value) * (1 << precision_bits)
    if scaled.denominator != 1:
        return None
    width = magnitude_bits + precision_bits
    scaled = int(scaled)
    half = 1 << (width - 1)
    if not -half <= scaled < half:
        return None
    return BVValue(scaled, width)


def encode_rounded(value, magnitude_bits, precision_bits):
    """Round to the nearest representable (ties to even), like a float.

    Returns (BVValue, exact_flag); None when the magnitude overflows.
    """
    scale = 1 << precision_bits
    scaled = Fraction(value) * scale
    exact = scaled.denominator == 1
    if not exact:
        floor = scaled.numerator // scaled.denominator
        remainder = scaled - floor
        if remainder > Fraction(1, 2) or (remainder == Fraction(1, 2) and floor % 2):
            floor += 1
        scaled = Fraction(floor)
    width = magnitude_bits + precision_bits
    half = 1 << (width - 1)
    if not -half <= int(scaled) < half:
        return None, exact
    return BVValue(int(scaled), width), exact


def decode(bits, precision_bits):
    """The rational a fixed-point bitvector represents (phi inverse)."""
    return Fraction(bits.signed, 1 << precision_bits)


def fx_add(left, right, precision_bits):
    """Fixed-point addition is exact (same scale); None on overflow."""
    del precision_bits  # same-scale addition needs no rescaling
    total = left.signed + right.signed
    if not left.fits_signed(total):
        return None
    return BVValue(total, left.width)


def fx_mul(left, right, precision_bits):
    """Truncating fixed-point multiply (the rounding analogue).

    Truncation is toward minus infinity (arithmetic shift), matching the
    bvashr-based circuit; None on overflow of the result width.
    """
    product = left.signed * right.signed
    shifted = product >> precision_bits
    if not left.fits_signed(shifted):
        return None
    return BVValue(shifted, left.width)


def fx_div(left, right, precision_bits):
    """Truncating fixed-point divide (toward zero, like bvsdiv).

    None on division by zero or overflow.
    """
    if right.signed == 0:
        return None
    numerator = left.signed << precision_bits
    quotient = abs(numerator) // abs(right.signed)
    if (numerator < 0) != (right.signed < 0):
        quotient = -quotient
    if not left.fits_signed(quotient):
        return None
    return BVValue(quotient, left.width)
