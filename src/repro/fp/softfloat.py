"""Arbitrary-width IEEE-754 softfloat with round-to-nearest-even.

The strategy is "compute exactly, then round once": every arithmetic
operation computes the mathematically exact rational result with
:class:`~fractions.Fraction` and then rounds it into the target format.
For a single operation this is *exactly* IEEE-754 correct rounding, and it
sidesteps hand-rolled guard/round/sticky bit bookkeeping entirely.

Only the RNE (round nearest, ties to even) rounding mode is implemented;
it is the SMT-LIB default and the only mode STAUB's translation emits.
"""

from fractions import Fraction

from repro.smtlib.values import FPValue


def _format_params(eb, sb):
    """Derived format constants: (bias, emin, emax, max significand)."""
    bias = (1 << (eb - 1)) - 1
    emax = bias
    emin = 1 - bias
    return bias, emin, emax


def _round_half_even(value):
    """Round a Fraction to the nearest integer, ties to even."""
    floor = value.numerator // value.denominator
    remainder = value - floor
    if remainder > Fraction(1, 2):
        return floor + 1
    if remainder < Fraction(1, 2):
        return floor
    return floor + (floor & 1)


def fp_from_fraction(value, eb, sb):
    """Round an exact rational into the (eb, sb) format under RNE.

    Overflow produces an infinity (per IEEE-754 RNE overflow rules);
    underflow may produce a subnormal or zero.
    """
    value = Fraction(value)
    if value == 0:
        return FPValue.zero(eb, sb)
    sign = 1 if value < 0 else 0
    magnitude = -value if sign else value
    _, emin, emax = _format_params(eb, sb)

    # Find e with 2**e <= magnitude < 2**(e+1).
    exponent = magnitude.numerator.bit_length() - magnitude.denominator.bit_length()
    if (Fraction(2) ** exponent) > magnitude:
        exponent -= 1
    elif (Fraction(2) ** (exponent + 1)) <= magnitude:
        exponent += 1

    if exponent < emin:
        exponent = emin  # subnormal range: fixed scale
    scale = exponent - (sb - 1)
    scaled = magnitude / (Fraction(2) ** scale)
    significand = _round_half_even(scaled)
    if significand == 0:
        return FPValue.zero(eb, sb, sign)
    if significand >= (1 << sb):
        significand >>= 1
        exponent += 1
    if exponent > emax:
        return FPValue.inf(eb, sb, sign)
    return FPValue(eb, sb, "finite", sign, significand, exponent - (sb - 1))


def _result_format(left, right):
    if (left.eb, left.sb) != (right.eb, right.sb):
        raise ValueError(
            f"mixed floating-point formats: ({left.eb},{left.sb}) vs ({right.eb},{right.sb})"
        )
    return left.eb, left.sb


def fp_neg(value):
    """``fp.neg``: flips the sign bit, even of NaN and infinities."""
    if value.is_nan:
        return value
    return FPValue(
        value.eb, value.sb, value.kind, 1 - value.sign, value.significand, value.exponent
    )


def fp_abs(value):
    """``fp.abs``: clears the sign bit."""
    if value.is_nan:
        return value
    return FPValue(value.eb, value.sb, value.kind, 0, value.significand, value.exponent)


def fp_add(left, right):
    """``fp.add`` with RNE rounding."""
    eb, sb = _result_format(left, right)
    if left.is_nan or right.is_nan:
        return FPValue.nan(eb, sb)
    if left.is_inf and right.is_inf:
        if left.sign != right.sign:
            return FPValue.nan(eb, sb)
        return left
    if left.is_inf:
        return left
    if right.is_inf:
        return right
    exact = left.to_fraction() + right.to_fraction()
    if exact == 0:
        # IEEE: x + (-x) is +0 under RNE; -0 + -0 is -0.
        sign = 1 if (left.sign and right.sign) else 0
        return FPValue.zero(eb, sb, sign)
    return fp_from_fraction(exact, eb, sb)


def fp_sub(left, right):
    """``fp.sub`` with RNE rounding."""
    return fp_add(left, fp_neg(right))


def fp_mul(left, right):
    """``fp.mul`` with RNE rounding."""
    eb, sb = _result_format(left, right)
    if left.is_nan or right.is_nan:
        return FPValue.nan(eb, sb)
    sign = left.sign ^ right.sign
    if left.is_inf or right.is_inf:
        other = right if left.is_inf else left
        if other.is_zero:
            return FPValue.nan(eb, sb)
        return FPValue.inf(eb, sb, sign)
    exact = left.to_fraction() * right.to_fraction()
    if exact == 0:
        return FPValue.zero(eb, sb, sign)
    return fp_from_fraction(exact, eb, sb)


def fp_div(left, right):
    """``fp.div`` with RNE rounding."""
    eb, sb = _result_format(left, right)
    if left.is_nan or right.is_nan:
        return FPValue.nan(eb, sb)
    sign = left.sign ^ right.sign
    if left.is_inf and right.is_inf:
        return FPValue.nan(eb, sb)
    if left.is_inf:
        return FPValue.inf(eb, sb, sign)
    if right.is_inf:
        return FPValue.zero(eb, sb, sign)
    if right.is_zero:
        if left.is_zero:
            return FPValue.nan(eb, sb)
        return FPValue.inf(eb, sb, sign)
    exact = left.to_fraction() / right.to_fraction()
    if exact == 0:
        return FPValue.zero(eb, sb, sign)
    return fp_from_fraction(exact, eb, sb)


def _comparable(left, right):
    """IEEE comparison preliminaries: NaN is unordered."""
    return not (left.is_nan or right.is_nan)


def _as_extended_value(value):
    """Map to an orderable extended real (infinities become sentinels)."""
    if value.is_inf:
        return Fraction(0), (-1 if value.sign else 1)
    return value.to_fraction(), 0


def _compare(left, right):
    """-1, 0, or +1; None when unordered (NaN)."""
    if not _comparable(left, right):
        return None
    left_value, left_inf = _as_extended_value(left)
    right_value, right_inf = _as_extended_value(right)
    if left_inf or right_inf:
        if left_inf == right_inf:
            return 0 if left_inf else (-1 if left_value < right_value else (1 if left_value > right_value else 0))
        return -1 if left_inf < right_inf else 1
    if left_value == right_value:
        return 0  # +0 equals -0
    return -1 if left_value < right_value else 1


def fp_eq(left, right):
    """``fp.eq``: IEEE equality (NaN != NaN, +0 == -0)."""
    return _compare(left, right) == 0


def fp_lt(left, right):
    comparison = _compare(left, right)
    return comparison is not None and comparison < 0


def fp_leq(left, right):
    comparison = _compare(left, right)
    return comparison is not None and comparison <= 0


def fp_gt(left, right):
    return fp_lt(right, left)


def fp_geq(left, right):
    return fp_leq(right, left)


# ---------------------------------------------------------------------------
# Bit-level packing (IEEE-754 interchange format)
# ---------------------------------------------------------------------------


def pack(value):
    """Pack an :class:`FPValue` into its IEEE interchange bit pattern."""
    eb, sb = value.eb, value.sb
    bias, emin, _ = _format_params(eb, sb)
    exponent_mask = (1 << eb) - 1
    if value.is_nan:
        # Canonical quiet NaN: all-ones exponent, MSB of the trailing field.
        return (exponent_mask << (sb - 1)) | (1 << (sb - 2))
    if value.is_inf:
        return (value.sign << (eb + sb - 1)) | (exponent_mask << (sb - 1))
    if value.is_zero:
        return value.sign << (eb + sb - 1)
    # value = significand * 2**exponent with sb-bit or subnormal significand.
    unbiased = value.exponent + (sb - 1)
    if unbiased >= emin and value.significand >= (1 << (sb - 1)):
        exponent_field = unbiased + bias
        trailing = value.significand - (1 << (sb - 1))
    else:
        exponent_field = 0
        shift = emin - unbiased
        trailing = value.significand >> shift if shift >= 0 else value.significand << -shift
    return (value.sign << (eb + sb - 1)) | (exponent_field << (sb - 1)) | trailing


def unpack(bits, eb, sb):
    """Unpack an IEEE interchange bit pattern into an :class:`FPValue`."""
    bias, emin, _ = _format_params(eb, sb)
    trailing = bits & ((1 << (sb - 1)) - 1)
    exponent_field = (bits >> (sb - 1)) & ((1 << eb) - 1)
    sign = (bits >> (eb + sb - 1)) & 1
    if exponent_field == (1 << eb) - 1:
        if trailing:
            return FPValue.nan(eb, sb)
        return FPValue.inf(eb, sb, sign)
    if exponent_field == 0:
        if trailing == 0:
            return FPValue.zero(eb, sb, sign)
        return FPValue(eb, sb, "finite", sign, trailing, emin - (sb - 1))
    significand = trailing | (1 << (sb - 1))
    return FPValue(eb, sb, "finite", sign, significand, exponent_field - bias - (sb - 1))
