"""Bitvector solving by bit-blasting to CNF.

- :mod:`repro.bv.bitblast` -- Tseitin-encodes the full supported QF_BV
  operator set (arithmetic, division, shifts, comparisons, overflow
  predicates) into CNF over the CDCL core.
- :mod:`repro.bv.solver` -- the end-to-end QF_BV/QF_FP-fixed-point solver:
  blast, solve, reconstruct a model of :class:`~repro.smtlib.values.BVValue`.
"""

from repro.bv.bitblast import BitBlaster
from repro.bv.solver import solve_bounded_script

__all__ = ["BitBlaster", "solve_bounded_script"]
