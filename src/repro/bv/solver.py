"""End-to-end bounded-constraint solving: blast, solve, reconstruct.

This is the "cheap side" of the theory arbitrage: a bounded script (Bool
and bitvector variables) is bit-blasted into CNF and handed to the CDCL
core. Statistics and the deterministic work counter flow back out so the
evaluation harness can measure T_post reproducibly.
"""

from repro import guard, telemetry
from repro.bv.bitblast import BitBlaster
from repro.errors import UnsupportedLogicError
from repro.sat.solver import SAT, SatSolver, SatStats
from repro.telemetry.stats import unified_stats


class BoundedResult:
    """Outcome of solving a bounded script.

    Attributes:
        status: ``"sat"``, ``"unsat"``, or ``"unknown"``.
        model: name -> value dict (BVValue / bool) when sat, else None.
        work: deterministic work units spent (SAT search + blast size).
        stats: raw :class:`~repro.sat.solver.SatStats`.
        cnf_vars / cnf_clauses: size of the blasted CNF.
    """

    def __init__(self, status, model, work, stats, cnf_vars, cnf_clauses):
        self.status = status
        self.model = model
        self.work = work
        self.stats = stats
        self.cnf_vars = cnf_vars
        self.cnf_clauses = cnf_clauses

    def stats_dict(self):
        """The uniform counter dict for this solve (telemetry shape)."""
        return unified_stats(
            cnf_vars=self.cnf_vars,
            cnf_clauses=self.cnf_clauses,
            **self.stats.as_dict(),
        )

    def __repr__(self):
        return f"BoundedResult({self.status}, work={self.work})"


#: Work units charged per CNF clause produced by bit-blasting; encoding
#: cost is part of T_post just as it is inside a real solver.
BLAST_WORK_PER_CLAUSE = 1


def solve_bounded_script(script, max_work=None, max_conflicts=None):
    """Solve a script whose variables are all Bool or bitvector sorted.

    Args:
        script: a :class:`~repro.smtlib.script.Script`.
        max_work: deterministic work budget; exhaustion gives ``unknown``.
        max_conflicts: optional extra conflict cap.

    Returns:
        A :class:`BoundedResult`.

    Raises:
        UnsupportedLogicError: the script has unbounded or FP variables
            (FP solving goes through the fixed-point encoding instead).
    """
    for name, sort in script.declarations.items():
        if not (sort.is_bool or sort.is_bv):
            raise UnsupportedLogicError(
                f"bounded solver cannot handle variable {name} of sort {sort}"
            )

    if guard.active().interrupted("bv"):
        # The envelope is already exhausted (deadline/cancellation):
        # don't even pay for blasting.
        return BoundedResult("unknown", None, 0, SatStats(), 0, 0)

    blaster = BitBlaster()
    with telemetry.span("blast") as blast_span:
        for assertion in script.assertions:
            blaster.assert_term(assertion)
        blast_span.add_work(BLAST_WORK_PER_CLAUSE * len(blaster.cnf.clauses))
    if telemetry.enabled:
        telemetry.record_counters(
            {
                "cnf_vars": blaster.cnf.num_vars,
                "cnf_clauses": len(blaster.cnf.clauses),
            },
            prefix="blast",
            engine="bv",
        )

    blast_work = BLAST_WORK_PER_CLAUSE * len(blaster.cnf.clauses)
    sat_budget = None
    if max_work is not None:
        sat_budget = max(0, max_work - blast_work)

    solver = SatSolver(blaster.cnf.num_vars)
    trivially_unsat = False
    for clause in blaster.cnf.clauses:
        if not solver.add_clause(clause):
            trivially_unsat = True
            break

    if trivially_unsat:
        return BoundedResult(
            "unsat",
            None,
            blast_work + solver.stats.work(),
            solver.stats,
            blaster.cnf.num_vars,
            len(blaster.cnf.clauses),
        )

    status = solver.solve(max_conflicts=max_conflicts, max_work=sat_budget)
    model = None
    if status == SAT:
        sat_model = solver.model()
        model = {
            name: blaster.extract_value(name, sort, sat_model)
            for name, sort in script.declarations.items()
        }
    return BoundedResult(
        status,
        model,
        blast_work + solver.stats.work(),
        solver.stats,
        blaster.cnf.num_vars,
        len(blaster.cnf.clauses),
    )
