"""End-to-end bounded-constraint solving: blast, solve, reconstruct.

This is the "cheap side" of the theory arbitrage: a bounded script (Bool
and bitvector variables) is bit-blasted into CNF and handed to the CDCL
core. Statistics and the deterministic work counter flow back out so the
evaluation harness can measure T_post reproducibly.
"""

from repro import guard, telemetry
from repro.bv.bitblast import BitBlaster
from repro.errors import UnsupportedLogicError
from repro.sat.solver import SAT, UNSAT, SatSolver, SatStats
from repro.telemetry.stats import unified_stats


class BoundedResult:
    """Outcome of solving a bounded script.

    Attributes:
        status: ``"sat"``, ``"unsat"``, or ``"unknown"``.
        model: name -> value dict (BVValue / bool) when sat, else None.
        work: deterministic work units spent (SAT search + blast size).
        stats: raw :class:`~repro.sat.solver.SatStats`.
        cnf_vars / cnf_clauses: size of the blasted CNF.
    """

    def __init__(self, status, model, work, stats, cnf_vars, cnf_clauses):
        self.status = status
        self.model = model
        self.work = work
        self.stats = stats
        self.cnf_vars = cnf_vars
        self.cnf_clauses = cnf_clauses

    def stats_dict(self):
        """The uniform counter dict for this solve (telemetry shape)."""
        return unified_stats(
            cnf_vars=self.cnf_vars,
            cnf_clauses=self.cnf_clauses,
            **self.stats.as_dict(),
        )

    def __repr__(self):
        return f"BoundedResult({self.status}, work={self.work})"


#: Work units charged per CNF clause produced by bit-blasting; encoding
#: cost is part of T_post just as it is inside a real solver.
BLAST_WORK_PER_CLAUSE = 1


def solve_bounded_script(script, max_work=None, max_conflicts=None):
    """Solve a script whose variables are all Bool or bitvector sorted.

    Args:
        script: a :class:`~repro.smtlib.script.Script`.
        max_work: deterministic work budget; exhaustion gives ``unknown``.
        max_conflicts: optional extra conflict cap.

    Returns:
        A :class:`BoundedResult`.

    Raises:
        UnsupportedLogicError: the script has unbounded or FP variables
            (FP solving goes through the fixed-point encoding instead).
    """
    for name, sort in script.declarations.items():
        if not (sort.is_bool or sort.is_bv):
            raise UnsupportedLogicError(
                f"bounded solver cannot handle variable {name} of sort {sort}"
            )

    if guard.active().interrupted("bv"):
        # The envelope is already exhausted (deadline/cancellation):
        # don't even pay for blasting.
        return BoundedResult("unknown", None, 0, SatStats(), 0, 0)

    blaster = BitBlaster()
    with telemetry.span("blast") as blast_span:
        for assertion in script.assertions:
            blaster.assert_term(assertion)
        blast_span.add_work(BLAST_WORK_PER_CLAUSE * len(blaster.cnf.clauses))
    if telemetry.enabled:
        telemetry.record_counters(
            {
                "cnf_vars": blaster.cnf.num_vars,
                "cnf_clauses": len(blaster.cnf.clauses),
                **blaster.stats.as_dict(),
            },
            prefix="blast",
            engine="bv",
        )

    blast_work = BLAST_WORK_PER_CLAUSE * len(blaster.cnf.clauses)
    sat_budget = None
    if max_work is not None:
        sat_budget = max(0, max_work - blast_work)

    # Structure sharing: the solver watches the blaster's arena blocks in
    # place -- no per-clause copy between blasting and solving.
    solver = SatSolver(cnf=blaster.cnf)
    if not solver.attach():
        return BoundedResult(
            "unsat",
            None,
            blast_work + solver.stats.work(),
            solver.stats,
            blaster.cnf.num_vars,
            len(blaster.cnf.clauses),
        )

    status = solver.solve(max_conflicts=max_conflicts, max_work=sat_budget)
    model = None
    if status == SAT:
        sat_model = solver.model()
        model = {
            name: blaster.extract_value(name, sort, sat_model)
            for name, sort in script.declarations.items()
        }
    return BoundedResult(
        status,
        model,
        blast_work + solver.stats.work(),
        solver.stats,
        blaster.cnf.num_vars,
        len(blaster.cnf.clauses),
    )


def extract_assertion_core(script, max_work=None, max_conflicts=None):
    """Assertion-level unsat core of a bounded script, or None.

    Re-blasts the script with every top-level assertion tagged by its
    Tseitin output literal and solves under those literals as SAT
    *assumptions* (instead of hard unit clauses), then maps the failing
    assumption subset from :meth:`SatSolver.final_conflict` back to
    assertion indices. This is a secondary extraction solve: the primary
    :func:`solve_bounded_script` result is untouched, so verdicts, models
    and work accounting stay byte-identical with extraction on or off.

    Returns a sorted tuple of assertion indices, or None when the script
    is not bounded, not unsat within the budget, or the conflict is at
    root level (dead solver / contradictory definitional clauses) --
    a root conflict has no attributable assertion subset, and lifting it
    to an empty core would subsume every future query.
    """
    if not script.assertions:
        return None
    for sort in script.declarations.values():
        if not (sort.is_bool or sort.is_bv):
            return None
    if guard.active().interrupted("bv"):
        return None
    with telemetry.span("core-extract") as span:
        blaster = BitBlaster()
        owners = {}
        assumptions = []
        for index, assertion in enumerate(script.assertions):
            literal = blaster.blast_bool(assertion)
            if literal not in owners:
                assumptions.append(literal)
                owners[literal] = []
            owners[literal].append(index)
        blast_work = BLAST_WORK_PER_CLAUSE * len(blaster.cnf.clauses)
        span.add_work(blast_work)
        solver = SatSolver(cnf=blaster.cnf)
        if not solver.attach():
            # Definitional clauses alone are contradictory: a root-
            # level conflict, not attributable to any assertion.
            span.set_attr("status", "root-conflict")
            return None
        sat_budget = None
        if max_work is not None:
            sat_budget = max(0, max_work - blast_work)
        status = solver.solve(
            assumptions=assumptions,
            max_work=sat_budget,
            max_conflicts=max_conflicts,
        )
        span.add_work(solver.stats.work())
        span.set_attr("status", status)
        if status != UNSAT:
            return None
        # final_conflict() holds the *negations* of the failing
        # assumption literals; an empty conflict is the dead-solver
        # root-UNSAT fast path and must never become a core.
        failed = set(solver.final_conflict())
        if not failed:
            span.set_attr("status", "root-conflict")
            return None
        indices = sorted(
            index
            for literal, owned in owners.items()
            if -literal in failed
            for index in owned
        )
        if not indices:
            return None
        return tuple(indices)


def assertion_core_digests(script, max_work=None):
    """Canonical digest set of the script's assertion-level core, or None."""
    indices = extract_assertion_core(script, max_work=max_work)
    if not indices:
        return None
    from repro.cache.keys import assertion_digest

    return frozenset(assertion_digest(script.assertions[i]) for i in indices)


class RefinementRound:
    """Outcome of one incremental solve-at-width round.

    Attributes:
        status: ``"sat"``, ``"unsat"``, or ``"unknown"``.
        model: name -> value dict when sat, else None.
        work: raw bounded work spent *this round* (new clauses + search
            delta) -- the same unit as :attr:`BoundedResult.work`.
        core: names of variables whose truncation assumptions appear in
            the final conflict; empty on a width-independent UNSAT.
        guard_core: True when a width-``w`` overflow-guard assumption (a
            tracked-term slice) appears in the final conflict -- widening
            variables alone cannot fix that round; the global width must
            grow.
        root_conflict: True when the UNSAT did not involve any assumption
            at all (the hard clauses are contradictory): no widening can
            ever help.
        assumed: number of assumption literals this round solved under.
        reused_clauses: learned clauses retained from earlier rounds at
            the moment this round's search started.
        new_clauses: CNF clauses added for this round's assumption ladder.
    """

    __slots__ = (
        "status",
        "model",
        "work",
        "core",
        "guard_core",
        "root_conflict",
        "assumed",
        "reused_clauses",
        "new_clauses",
    )

    def __init__(
        self,
        status,
        model,
        work,
        core,
        guard_core,
        root_conflict,
        assumed,
        reused_clauses,
        new_clauses,
    ):
        self.status = status
        self.model = model
        self.work = work
        self.core = core
        self.guard_core = guard_core
        self.root_conflict = root_conflict
        self.assumed = assumed
        self.reused_clauses = reused_clauses
        self.new_clauses = new_clauses

    def __repr__(self):
        return f"RefinementRound({self.status}, work={self.work}, core={self.core})"


class IncrementalBoundedSession:
    """Blast once, solve at many widths, keep everything learned.

    The script is encoded at its *declared* (full) widths exactly once
    into a persistent :class:`SatSolver`. A round at a narrower width is
    a solve under per-variable truncation assumptions ("the high bits are
    sign-extension", see
    :meth:`~repro.bv.bitblast.BitBlaster.truncation_assumption`);
    widening a variable just drops its assumption at the next call, so
    learned clauses survive every round. On a bounded-UNSAT round,
    :meth:`SatSolver.final_conflict` yields the subset of truncation
    assumptions that caused the failure -- the unsat core that drives
    core-guided widening in :class:`repro.core.refinement.RefinementStaub`.
    """

    def __init__(self, script, tracked=()):
        for name, sort in script.declarations.items():
            if not (sort.is_bool or sort.is_bv):
                raise UnsupportedLogicError(
                    f"bounded solver cannot handle variable {name} of sort {sort}"
                )
        self.script = script
        self.blaster = BitBlaster()
        with telemetry.span("blast", incremental=True) as span:
            for assertion in script.assertions:
                self.blaster.assert_term(assertion)
            # Tracked terms are subterms of the assertions, so these are
            # cache hits; the rows are kept for per-round guard slices.
            self._tracked = [self.blaster.blast_bits(term) for term in tracked]
            span.add_work(BLAST_WORK_PER_CLAUSE * len(self.blaster.cnf.clauses))
        if telemetry.enabled:
            telemetry.record_counters(
                {
                    "cnf_vars": self.blaster.cnf.num_vars,
                    "cnf_clauses": len(self.blaster.cnf.clauses),
                    **self.blaster.stats.as_dict(),
                },
                prefix="blast",
                engine="bv-incremental",
            )
        self.solver = SatSolver(cnf=self.blaster.cnf)
        self._synced = 0
        self._root_unsat = False
        self.rounds = 0

    @property
    def cnf_vars(self):
        return self.blaster.cnf.num_vars

    @property
    def cnf_clauses(self):
        return len(self.blaster.cnf.clauses)

    @property
    def permanently_unsat(self):
        """True once the hard (assumption-free) clauses are contradictory.

        Widening cannot help then: the truncation assumptions are the
        only retractable part of the encoding.
        """
        return self._root_unsat or not self.solver.okay()

    def _sync(self):
        """Attach clauses produced since the previous round in place."""
        cnf = self.blaster.cnf
        added = len(cnf) - self._synced
        if added:
            if not self.solver.attach(start=self._synced) and not self._root_unsat:
                self._root_unsat = True
            self._synced = len(cnf)
        if self.solver.num_vars < cnf.num_vars:
            self.solver.grow_to(cnf.num_vars)
        return added

    def solve_round(self, widths, guard_width=None, max_work=None, max_conflicts=None):
        """Solve with every variable truncated to its entry in ``widths``.

        Args:
            widths: name -> width mapping; variables missing from it (or
                mapped at/above their declared width) are unconstrained.
            guard_width: when given, additionally assume every tracked
                arithmetic result fits ``guard_width`` bits signed --
                reproducing the overflow-guard semantics of a scratch
                transform at that width. At the full width this is a
                no-op (the hard guards already apply).
            max_work: deterministic budget for this round (raw bounded
                units, covering the round's ladder clauses and search).

        Returns:
            A :class:`RefinementRound`.
        """
        if guard.active().interrupted("bv"):
            return RefinementRound(
                "unknown", None, 0, (), False, False, 0,
                self.solver.learned_count(), 0,
            )
        assumptions = []
        owner = {}
        guard_literals = set()
        for name in sorted(widths):
            literal = self.blaster.truncation_assumption(name, widths[name])
            if literal is None:
                continue
            assumptions.append(literal)
            owner[literal] = name
        if guard_width is not None:
            for bits in self._tracked:
                literal = self.blaster.slice_assumption(bits, guard_width)
                if literal is None or literal in owner or literal in guard_literals:
                    continue
                assumptions.append(literal)
                guard_literals.add(literal)
        # Baseline before _sync: feeding clauses into the solver is real
        # per-round work (attach + initial propagation) and must be
        # charged to the round that caused it, not silently dropped.
        base_work = self.solver.work()
        new_clauses = self._sync()
        blast_work = BLAST_WORK_PER_CLAUSE * new_clauses
        reused = self.solver.learned_count()
        core = ()
        guard_core = False
        root_conflict = False
        if self.permanently_unsat:
            status = UNSAT
            root_conflict = True
        else:
            sat_budget = None
            if max_work is not None:
                sync_work = self.solver.work() - base_work
                sat_budget = max(0, max_work - blast_work - sync_work)
            status = self.solver.solve(
                assumptions=assumptions,
                max_work=sat_budget,
                max_conflicts=max_conflicts,
            )
            if status == UNSAT:
                failed = {abs(literal) for literal in self.solver.final_conflict()}
                core = tuple(
                    sorted(owner[lit] for lit in failed if lit in owner)
                )
                guard_core = bool(failed & guard_literals)
                root_conflict = not failed
        model = None
        if status == SAT:
            sat_model = self.solver.model()
            model = {
                name: self.blaster.extract_value(name, sort, sat_model)
                for name, sort in self.script.declarations.items()
            }
        self.rounds += 1
        work = blast_work + (self.solver.work() - base_work)
        return RefinementRound(
            status, model, work, core, guard_core, root_conflict,
            len(assumptions), reused, new_clauses,
        )
