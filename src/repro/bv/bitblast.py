"""Tseitin bit-blasting of bitvector terms into CNF.

Each bitvector term maps to a tuple of CNF literals, least significant bit
first; each boolean term maps to a single literal. Gates are cached, so
the shared structure of the term DAG carries over to shared circuitry.

Circuit choices are the textbook ones used by real bit-blasters:

- ripple-carry adders (with constant propagation through the gate cache);
- shift-and-add multipliers;
- division by fresh quotient/remainder witnesses constrained with a
  double-width multiplication, which matches how solvers avoid explicit
  divider circuits;
- barrel shifters;
- subtract-based unsigned comparators, sign-flip wrappers for signed ones;
- overflow predicates computed on width-extended circuits, exactly
  mirroring their SMT-LIB definitions.
"""

from repro import telemetry
from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.smtlib.terms import Op
from repro.smtlib.values import BVValue


class BlastStats:
    """Hot-path gate counters, tracked only while telemetry is enabled.

    These feed the bench harness's throughput accounting (gates blasted,
    gate-cache effectiveness); they never influence solving and are kept
    outside the deterministic result contract, so disabled runs stay
    byte-identical.
    """

    __slots__ = (
        "and_gates",
        "xor_gates",
        "mux_gates",
        "gate_cache_hits",
        "const_folds",
        "block_reuse",
    )

    def __init__(self):
        self.and_gates = 0
        self.xor_gates = 0
        self.mux_gates = 0
        self.gate_cache_hits = 0
        self.const_folds = 0
        # Clauses *not* re-emitted thanks to gate-cache structure sharing:
        # each cache hit reuses the arena block span recorded when the
        # gate was first blasted.
        self.block_reuse = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class BitBlaster:
    """Encodes terms into a growing CNF.

    Use :meth:`assert_term` for each top-level assertion, then hand
    ``self.cnf`` to the SAT solver and map its model back with
    :meth:`extract_value`.
    """

    def __init__(self):
        self.cnf = CNF()
        self._true = self.cnf.new_var()
        self.cnf.add_clause([self._true])
        self._bool_cache = {}
        self._bits_cache = {}
        self._var_bools = {}
        self._var_bits = {}
        self._and_cache = {}
        self._or_cache = {}
        self._xor_cache = {}
        self._trunc_cache = {}
        # Gate-cache entry -> (first, last) clause *indices* of the block
        # emitted for it. Indices (not arena offsets) survive arena
        # compaction without remapping; resolve offsets on demand via
        # ``cnf.clause_ref``. This is what makes the structure sharing
        # observable: a refinement round whose gates all hit the caches
        # allocates zero new blocks.
        self._block_spans = {}
        self.stats = BlastStats()

    # -- gate layer ------------------------------------------------------

    @property
    def true_literal(self):
        return self._true

    @property
    def false_literal(self):
        return -self._true

    def _gate_and(self, a, b):
        # Cache first: hits dominate, and a foldable pair is never cached
        # (only non-constant, distinct operand pairs are emitted), so
        # checking the cache before the const-fold guard cannot change
        # any result.
        key = (a, b) if a < b else (b, a)
        out = self._and_cache.get(key)
        if out is not None:
            if telemetry.enabled:
                self.stats.gate_cache_hits += 1
                self.stats.block_reuse += 3
            return out
        if (
            a == self._true
            or b == self._true
            or a == -self._true
            or b == -self._true
            or a == b
            or a == -b
        ):
            if telemetry.enabled:
                self.stats.const_folds += 1
            if a == self._true:
                return b
            if b == self._true:
                return a
            if a == -self._true or b == -self._true:
                return -self._true
            if a == b:
                return a
            return -self._true  # a == -b
        out = self.cnf.new_var()
        start = len(self.cnf)
        # The const-fold guard above proves a, b, out pairwise distinct
        # and non-complementary: emit without rescanning.
        emit = self.cnf.emit_clause
        emit([-out, a])
        emit([-out, b])
        emit([out, -a, -b])
        self._and_cache[key] = out
        self._block_spans[("and", key)] = (start, len(self.cnf))
        if telemetry.enabled:
            self.stats.and_gates += 1
        return out

    def _gate_or(self, a, b):
        return -self._gate_and(-a, -b)

    def _gate_xor(self, a, b):
        cache_key = (a, b) if a < b else (b, a)
        out = self._xor_cache.get(cache_key)
        if out is not None:
            if telemetry.enabled:
                self.stats.gate_cache_hits += 1
                self.stats.block_reuse += 4
            return out
        if (
            a == self._true
            or b == self._true
            or a == -self._true
            or b == -self._true
            or a == b
            or a == -b
        ):
            if telemetry.enabled:
                self.stats.const_folds += 1
            if a == self._true:
                return -b
            if b == self._true:
                return -a
            if a == -self._true:
                return b
            if b == -self._true:
                return a
            if a == b:
                return -self._true
            return self._true  # a == -b
        out = self.cnf.new_var()
        start = len(self.cnf)
        emit = self.cnf.emit_clause
        emit([-out, a, b])
        emit([-out, -a, -b])
        emit([out, -a, b])
        emit([out, a, -b])
        self._xor_cache[cache_key] = out
        self._block_spans[("xor", cache_key)] = (start, len(self.cnf))
        if telemetry.enabled:
            self.stats.xor_gates += 1
        return out

    def _gate_mux(self, select, if_true, if_false):
        """out = select ? if_true : if_false."""
        if if_true == if_false or select == self._true or select == -self._true:
            if telemetry.enabled:
                self.stats.const_folds += 1
            if if_true == if_false or select == self._true:
                return if_true
            return if_false
        out = self.cnf.new_var()
        if telemetry.enabled:
            self.stats.mux_gates += 1
        self.cnf.add_clause([-out, -select, if_true])
        self.cnf.add_clause([-out, select, if_false])
        self.cnf.add_clause([out, -select, -if_true])
        self.cnf.add_clause([out, select, -if_false])
        return out

    def _gate_and_many(self, literals):
        result = self._true
        for literal in literals:
            result = self._gate_and(result, literal)
        return result

    def _gate_or_many(self, literals):
        result = -self._true
        for literal in literals:
            result = self._gate_or(result, literal)
        return result

    def _const_bits(self, value, width):
        return tuple(
            self._true if (value >> i) & 1 else -self._true for i in range(width)
        )

    # -- arithmetic circuits ----------------------------------------------

    def _full_adder(self, a, b, carry_in):
        axb = self._gate_xor(a, b)
        total = self._gate_xor(axb, carry_in)
        carry_out = self._gate_or(self._gate_and(a, b), self._gate_and(axb, carry_in))
        return total, carry_out

    def _adder(self, left, right, carry_in=None):
        """Ripple-carry add; returns (sum bits, carry out)."""
        carry = carry_in if carry_in is not None else -self._true
        out = []
        for a, b in zip(left, right):
            total, carry = self._full_adder(a, b, carry)
            out.append(total)
        return tuple(out), carry

    def _negate(self, bits):
        inverted = tuple(-b for b in bits)
        one = self._const_bits(1, len(bits))
        total, _ = self._adder(inverted, one)
        return total

    def _subtract(self, left, right):
        """left - right; returns (difference bits, borrow-free carry)."""
        inverted = tuple(-b for b in right)
        return self._adder(left, inverted, carry_in=self._true)

    def _multiplier(self, left, right):
        """Shift-and-add multiplier, truncated to len(left) bits.

        The operand with more constant bits drives the rows, so constant
        multipliers cost only their popcount in adder rows.
        """
        width = len(left)

        def constant_bits(bits):
            return sum(1 for b in bits if b == self._true or b == -self._true)

        if constant_bits(left) > constant_bits(right):
            left, right = right, left
        accumulator = self._const_bits(0, width)
        for i, control in enumerate(right):
            if control == -self._true:
                continue
            row = tuple(
                self._gate_and(control, left[j - i]) if j >= i else -self._true
                for j in range(width)
            )
            accumulator, _ = self._adder(accumulator, row)
        return accumulator

    def _extend(self, bits, extra, signed):
        if extra <= 0:
            return tuple(bits)
        fill = bits[-1] if signed else -self._true
        return tuple(bits) + tuple(fill for _ in range(extra))

    def _ult(self, left, right):
        """Unsigned less-than via subtraction borrow."""
        _, carry = self._subtract(left, right)
        return -carry  # no carry out => borrow => left < right

    def _slt(self, left, right):
        """Signed less-than: flip the sign bits and compare unsigned."""
        flipped_left = tuple(left[:-1]) + (-left[-1],)
        flipped_right = tuple(right[:-1]) + (-right[-1],)
        return self._ult(flipped_left, flipped_right)

    def _equal(self, left, right):
        return self._gate_and_many(
            [-self._gate_xor(a, b) for a, b in zip(left, right)]
        )

    def _mux_bits(self, select, if_true, if_false):
        return tuple(
            self._gate_mux(select, a, b) for a, b in zip(if_true, if_false)
        )

    def _shift(self, bits, amount_bits, kind):
        """Barrel shifter. kind is 'shl', 'lshr', or 'ashr'."""
        width = len(bits)
        fill = bits[-1] if kind == "ashr" else -self._true
        current = tuple(bits)
        for stage, control in enumerate(amount_bits):
            offset = 1 << stage
            if offset >= width and kind in ("lshr", "ashr"):
                shifted = tuple(fill for _ in range(width))
            elif offset >= width:
                shifted = self._const_bits(0, width)
            elif kind == "shl":
                shifted = tuple(
                    current[i - offset] if i >= offset else -self._true
                    for i in range(width)
                )
            else:
                shifted = tuple(
                    current[i + offset] if i + offset < width else fill
                    for i in range(width)
                )
            current = self._mux_bits(control, shifted, current)
        return current

    def _udivider(self, left, right):
        """Unsigned division via witness variables.

        Introduces fresh quotient/remainder vectors q, r with:
        ``right != 0 -> left = q*right + r (exactly, double width) and
        r < right``; ``right == 0 -> q = ~0 and r = left`` (SMT-LIB).
        Returns (q bits, r bits).
        """
        width = len(left)
        quotient = tuple(self.cnf.new_var() for _ in range(width))
        remainder = tuple(self.cnf.new_var() for _ in range(width))
        zero = self._const_bits(0, width)
        divisor_is_zero = self._equal(right, zero)

        # Double-width product + remainder must equal the dividend exactly.
        q2 = self._extend(quotient, width, signed=False)
        d2 = self._extend(right, width, signed=False)
        r2 = self._extend(remainder, width, signed=False)
        product = self._multiplier(q2, d2)
        total, _ = self._adder(product, r2)
        left2 = self._extend(left, width, signed=False)
        exact = self._equal(total, left2)
        remainder_small = self._ult(remainder, right)
        ok = self._gate_and(exact, remainder_small)

        q_all_ones = self._equal(quotient, self._const_bits((1 << width) - 1, width))
        r_is_left = self._equal(remainder, left)
        zero_case = self._gate_and(q_all_ones, r_is_left)

        constraint = self._gate_mux(divisor_is_zero, zero_case, ok)
        self.cnf.add_clause([constraint])
        return quotient, remainder

    def _abs_bits(self, bits):
        sign = bits[-1]
        return self._mux_bits(sign, self._negate(bits), bits)

    def _sdivider(self, left, right, want):
        """Signed division; ``want`` is 'div', 'rem', or 'mod'."""
        width = len(left)
        left_sign = left[-1]
        right_sign = right[-1]
        abs_left = self._abs_bits(left)
        abs_right = self._abs_bits(right)
        quotient, remainder = self._udivider(abs_left, abs_right)
        result_sign = self._gate_xor(left_sign, right_sign)
        if want == "div":
            # bvsdiv truncates toward zero; by-zero semantics are encoded
            # in _udivider's zero case on magnitudes, then sign-corrected.
            signed_q = self._mux_bits(result_sign, self._negate(quotient), quotient)
            zero = self._const_bits(0, width)
            divisor_zero = self._equal(right, zero)
            # SMT-LIB: bvsdiv x 0 = 1 if x < 0 else -1 (all ones).
            ones = self._const_bits((1 << width) - 1, width)
            one = self._const_bits(1, width)
            zero_result = self._mux_bits(left_sign, one, ones)
            return self._mux_bits(divisor_zero, zero_result, signed_q)
        if want == "rem":
            signed_r = self._mux_bits(left_sign, self._negate(remainder), remainder)
            zero = self._const_bits(0, width)
            divisor_zero = self._equal(right, zero)
            return self._mux_bits(divisor_zero, left, signed_r)
        # smod: sign follows the divisor.
        signed_r = self._mux_bits(left_sign, self._negate(remainder), remainder)
        zero = self._const_bits(0, width)
        r_is_zero = self._equal(signed_r, zero)
        signs_differ = self._gate_xor(left_sign, right_sign)
        adjusted, _ = self._adder(signed_r, right)
        need_adjust = self._gate_and(signs_differ, -r_is_zero)
        modded = self._mux_bits(need_adjust, adjusted, signed_r)
        divisor_zero = self._equal(right, zero)
        return self._mux_bits(divisor_zero, left, modded)

    # -- overflow predicates ----------------------------------------------

    def _overflow(self, op, left, right):
        width = len(left)
        if op is Op.BVSADDO or op is Op.BVSSUBO:
            extended_left = self._extend(left, 1, signed=True)
            extended_right = self._extend(right, 1, signed=True)
            if op is Op.BVSADDO:
                total, _ = self._adder(extended_left, extended_right)
            else:
                total, _ = self._subtract(extended_left, extended_right)
            # Overflow iff the (width+1)-bit result does not sign-fit width.
            return self._gate_xor(total[width], total[width - 1])
        if op is Op.BVUADDO:
            _, carry = self._adder(left, right)
            return carry
        if op is Op.BVUSUBO:
            return self._ult(left, right)
        if op is Op.BVSMULO:
            extended_left = self._extend(left, width, signed=True)
            extended_right = self._extend(right, width, signed=True)
            product = self._multiplier(extended_left, extended_right)
            # Fits iff bits [width-1 .. 2*width-1] all equal the sign bit.
            sign = product[width - 1]
            mismatches = [self._gate_xor(product[i], sign) for i in range(width, 2 * width)]
            return self._gate_or_many(mismatches)
        if op is Op.BVUMULO:
            extended_left = self._extend(left, width, signed=False)
            extended_right = self._extend(right, width, signed=False)
            product = self._multiplier(extended_left, extended_right)
            return self._gate_or_many(list(product[width:]))
        if op is Op.BVSDIVO:
            int_min = self._equal(left, self._const_bits(1 << (width - 1), width))
            minus_one = self._equal(right, self._const_bits((1 << width) - 1, width))
            return self._gate_and(int_min, minus_one)
        raise SolverError(f"unhandled overflow predicate {op}")

    # -- term translation ---------------------------------------------------

    def blast_bool(self, term):
        """Return the CNF literal equivalent to a boolean term."""
        cached = self._bool_cache.get(term.tid)
        if cached is not None:
            return cached
        literal = self._blast_bool_uncached(term)
        self._bool_cache[term.tid] = literal
        return literal

    def _blast_bool_uncached(self, term):
        op = term.op
        if op is Op.CONST:
            return self._true if term.value else -self._true
        if op is Op.VAR:
            literal = self._var_bools.get(term.name)
            if literal is None:
                literal = self.cnf.new_var()
                self._var_bools[term.name] = literal
            return literal
        if op is Op.NOT:
            return -self.blast_bool(term.args[0])
        if op is Op.AND:
            return self._gate_and_many([self.blast_bool(a) for a in term.args])
        if op is Op.OR:
            return self._gate_or_many([self.blast_bool(a) for a in term.args])
        if op is Op.XOR:
            result = -self._true
            for arg in term.args:
                result = self._gate_xor(result, self.blast_bool(arg))
            return result
        if op is Op.IMPLIES:
            return self._gate_or(-self.blast_bool(term.args[0]), self.blast_bool(term.args[1]))
        if op is Op.ITE:
            return self._gate_mux(
                self.blast_bool(term.args[0]),
                self.blast_bool(term.args[1]),
                self.blast_bool(term.args[2]),
            )
        if op is Op.EQ:
            left, right = term.args
            if left.sort.is_bv:
                return self._equal(self.blast_bits(left), self.blast_bits(right))
            if left.sort.is_bool:
                return -self._gate_xor(self.blast_bool(left), self.blast_bool(right))
            raise SolverError(f"cannot bit-blast equality over sort {left.sort}")
        if op is Op.DISTINCT:
            literals = []
            for i in range(len(term.args)):
                for j in range(i + 1, len(term.args)):
                    literals.append(
                        -self.blast_bool_pair_equal(term.args[i], term.args[j])
                    )
            return self._gate_and_many(literals)
        comparison = self._blast_comparison(term)
        if comparison is not None:
            return comparison
        raise SolverError(f"cannot bit-blast boolean operator {op}")

    def blast_bool_pair_equal(self, left, right):
        if left.sort.is_bv:
            return self._equal(self.blast_bits(left), self.blast_bits(right))
        return -self._gate_xor(self.blast_bool(left), self.blast_bool(right))

    _COMPARISONS = {
        Op.BVULT: ("ult", False),
        Op.BVULE: ("ule", False),
        Op.BVUGT: ("ugt", False),
        Op.BVUGE: ("uge", False),
        Op.BVSLT: ("ult", True),
        Op.BVSLE: ("ule", True),
        Op.BVSGT: ("ugt", True),
        Op.BVSGE: ("uge", True),
    }

    def _blast_comparison(self, term):
        op = term.op
        if op in self._COMPARISONS:
            kind, signed = self._COMPARISONS[op]
            left = self.blast_bits(term.args[0])
            right = self.blast_bits(term.args[1])
            less = self._slt if signed else self._ult
            if kind == "ult":
                return less(left, right)
            if kind == "ugt":
                return less(right, left)
            if kind == "ule":
                return -less(right, left)
            return -less(left, right)
        if op in (
            Op.BVSADDO,
            Op.BVUADDO,
            Op.BVSSUBO,
            Op.BVUSUBO,
            Op.BVSMULO,
            Op.BVUMULO,
            Op.BVSDIVO,
        ):
            left = self.blast_bits(term.args[0])
            right = self.blast_bits(term.args[1])
            return self._overflow(op, left, right)
        if op is Op.BVNEGO:
            bits = self.blast_bits(term.args[0])
            width = len(bits)
            return self._equal(bits, self._const_bits(1 << (width - 1), width))
        return None

    def blast_bits(self, term):
        """Return the literal vector (LSB first) for a bitvector term."""
        cached = self._bits_cache.get(term.tid)
        if cached is not None:
            return cached
        bits = self._blast_bits_uncached(term)
        self._bits_cache[term.tid] = bits
        return bits

    def _blast_bits_uncached(self, term):
        op = term.op
        width = term.sort.width
        if op is Op.CONST:
            return self._const_bits(term.value.unsigned, width)
        if op is Op.VAR:
            bits = self._var_bits.get(term.name)
            if bits is None:
                bits = tuple(self.cnf.new_var() for _ in range(width))
                self._var_bits[term.name] = bits
            return bits
        if op is Op.ITE:
            return self._mux_bits(
                self.blast_bool(term.args[0]),
                self.blast_bits(term.args[1]),
                self.blast_bits(term.args[2]),
            )
        if op is Op.BVNOT:
            return tuple(-b for b in self.blast_bits(term.args[0]))
        if op is Op.BVNEG:
            return self._negate(self.blast_bits(term.args[0]))
        if op is Op.BVABS:
            return self._abs_bits(self.blast_bits(term.args[0]))
        if op is Op.EXTRACT:
            hi, lo = term.payload
            return self.blast_bits(term.args[0])[lo : hi + 1]
        if op is Op.ZERO_EXTEND:
            return self._extend(self.blast_bits(term.args[0]), term.payload, signed=False)
        if op is Op.SIGN_EXTEND:
            return self._extend(self.blast_bits(term.args[0]), term.payload, signed=True)
        if op is Op.CONCAT:
            high = self.blast_bits(term.args[0])
            low = self.blast_bits(term.args[1])
            return tuple(low) + tuple(high)

        left = self.blast_bits(term.args[0])
        right = self.blast_bits(term.args[1])
        if op is Op.BVAND:
            return tuple(self._gate_and(a, b) for a, b in zip(left, right))
        if op is Op.BVOR:
            return tuple(self._gate_or(a, b) for a, b in zip(left, right))
        if op is Op.BVXOR:
            return tuple(self._gate_xor(a, b) for a, b in zip(left, right))
        if op is Op.BVADD:
            total, _ = self._adder(left, right)
            return total
        if op is Op.BVSUB:
            total, _ = self._subtract(left, right)
            return total
        if op is Op.BVMUL:
            return self._multiplier(left, right)
        if op is Op.BVSHL:
            return self._shift_with_saturation(left, right, "shl")
        if op is Op.BVLSHR:
            return self._shift_with_saturation(left, right, "lshr")
        if op is Op.BVASHR:
            return self._shift_with_saturation(left, right, "ashr")
        if op is Op.BVUDIV:
            quotient, _ = self._udivider(left, right)
            zero = self._const_bits(0, width)
            divisor_zero = self._equal(right, zero)
            ones = self._const_bits((1 << width) - 1, width)
            return self._mux_bits(divisor_zero, ones, quotient)
        if op is Op.BVUREM:
            _, remainder = self._udivider(left, right)
            return remainder
        if op is Op.BVSDIV:
            return self._sdivider(left, right, "div")
        if op is Op.BVSREM:
            return self._sdivider(left, right, "rem")
        if op is Op.BVSMOD:
            return self._sdivider(left, right, "mod")
        raise SolverError(f"cannot bit-blast bitvector operator {op}")

    def _shift_with_saturation(self, bits, amount, kind):
        """Barrel shift, saturating for amounts >= width."""
        width = len(bits)
        stages = max(1, (width - 1).bit_length())
        shifted = self._shift(bits, amount[:stages], kind)
        # If any amount bit beyond the staged range is set, or the staged
        # amount itself reaches width, the result saturates.
        too_big = self._gate_or_many(list(amount[stages:]))
        staged_value_ge_width = self._ult(
            self._const_bits(width - 1, stages), tuple(amount[:stages])
        )
        saturate = self._gate_or(too_big, staged_value_ge_width)
        fill = bits[-1] if kind == "ashr" else -self._true
        saturated = tuple(fill for _ in range(width))
        return self._mux_bits(saturate, saturated, shifted)

    # -- top level -------------------------------------------------------

    def assert_term(self, term):
        """Assert a boolean term as a unit constraint."""
        literal = self.blast_bool(term)
        self.cnf.add_clause([literal])

    def block_spans(self):
        """Gate-cache entry -> ``(first, last)`` clause-index span.

        Each entry names the contiguous block of CNF clauses emitted when
        the gate (or truncation ladder) was first blasted; later cache
        hits reuse the block instead of re-emitting it. Spans are clause
        *indices* into ``self.cnf``, so they stay valid across arena
        compaction; map to live arena offsets with
        ``self.cnf.clause_ref(i)``.
        """
        return dict(self._block_spans)

    def variable_bits(self, name):
        """The allocated literal vector of a bitvector variable, or None.

        None means the variable never occurred in a blasted term (its
        value is unconstrained; :meth:`extract_value` defaults it to 0).
        """
        return self._var_bits.get(name)

    def truncation_assumption(self, name, width):
        """An assumption literal that sign-truncates a variable to ``width``.

        The width-``w`` encoding of a variable is the low-``w``-bit slice
        of its full-width encoding; this returns a fresh literal ``a``
        with ``a -> (bit_i == bit_{w-1})`` for every high bit ``i >= w``,
        so assuming ``a`` restricts the variable to the signed range of
        ``width`` bits without adding any hard constraint. Retracting the
        assumption (just not passing it to the next solve call) restores
        the full width; no clause ever has to be deleted.

        Allocated once per ``(name, width)`` -- repeated rounds at the
        same width reuse the same literal and clauses. Returns None when
        the variable has no encoding or already fits (``width`` covers
        its declared width): assuming nothing is the correct semantics.
        """
        bits = self._var_bits.get(name)
        if bits is None:
            return None
        return self.slice_assumption(bits, width)

    def slice_assumption(self, bits, width):
        """Like :meth:`truncation_assumption` but over a raw literal row.

        Used for *term* rows too (e.g. the tracked arithmetic results of
        a transform), where "fits ``width`` bits signed" is exactly the
        no-overflow-at-``width`` guard of a width-``width`` encoding.
        Cached per ``(bits, width)``.
        """
        if width >= len(bits) or width < 1:
            return None
        key = (tuple(bits), width)
        literal = self._trunc_cache.get(key)
        if literal is None:
            literal = self.cnf.new_var()
            start = len(self.cnf)
            sign = bits[width - 1]
            for high in bits[width:]:
                self.cnf.add_clause([-literal, -high, sign])
                self.cnf.add_clause([-literal, high, -sign])
            self._trunc_cache[key] = literal
            self._block_spans[("trunc", key)] = (start, len(self.cnf))
        elif telemetry.enabled:
            span = self._block_spans[("trunc", key)]
            self.stats.block_reuse += span[1] - span[0]
        return literal

    def extract_value(self, name, sort, sat_model):
        """Reconstruct a variable's value from a SAT model."""
        if sort.is_bool:
            literal = self._var_bools.get(name)
            if literal is None:
                return False
            return bool(sat_model.get(abs(literal), False)) == (literal > 0)
        bits = self._var_bits.get(name)
        if bits is None:
            return BVValue(0, sort.width)
        value = 0
        for index, literal in enumerate(bits):
            bit = sat_model.get(abs(literal), False)
            if literal < 0:
                bit = not bit
            if bit:
                value |= 1 << index
        return BVValue(value, sort.width)
