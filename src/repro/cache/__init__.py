"""Result caching for the STAUB stack.

The cache is keyed by the canonical printed form of the *normalized*
script (see :mod:`repro.cache.keys`): commutative arguments ordered,
assertions de-duplicated and sorted, declarations sorted. Two scripts
that are permutations of the same conjunction therefore share a key --
and never solve twice.

A process-wide *active cache* can be installed with :func:`set_cache`
(or scoped with :func:`activated`); :func:`repro.solver.solve_script`
consults it automatically, so the CLI and the evaluation runner only
need to install a store to memoize every top-level solve.
"""

from contextlib import contextmanager

from repro.cache.keys import (
    CanonicalOrder,
    assertion_digest,
    cache_key,
    canonical_text,
    normalize_assertions,
    script_digests,
)
from repro.cache.sharded import DEFAULT_SHARDS, ShardedSolveCache, open_cache
from repro.cache.store import (
    DEFAULT_MAX_CORES,
    DEFAULT_MAX_ENTRIES,
    SolveCache,
    decode_model,
    encode_model,
    entry_from_result,
    result_from_entry,
)

__all__ = [
    "CanonicalOrder",
    "DEFAULT_MAX_CORES",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_SHARDS",
    "ShardedSolveCache",
    "SolveCache",
    "activated",
    "open_cache",
    "assertion_digest",
    "cache_key",
    "canonical_text",
    "decode_model",
    "encode_model",
    "entry_from_result",
    "get_cache",
    "normalize_assertions",
    "result_from_entry",
    "script_digests",
    "set_cache",
]

#: The process-wide active cache (None = caching off).
_active = None


def get_cache():
    """The active :class:`SolveCache`, or None when caching is off."""
    return _active


def set_cache(cache):
    """Install (or clear, with None) the active cache; returns the old one."""
    global _active
    previous = _active
    _active = cache
    return previous


@contextmanager
def activated(cache):
    """Scope an active cache to a ``with`` block."""
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)
