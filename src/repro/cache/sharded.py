"""A solve cache sharded by canonical-key prefix across N files.

One JSON file per shard under a directory, so concurrent workers (or
several server processes) never contend on a single file and one corrupt
shard never takes down the store:

- **routing**: whole-key entries shard on the leading hex digits of the
  canonical cache key; unsat cores shard on their minimum digest. Both
  are stable properties of the content, so every process routes a given
  key to the same shard.
- **batched flushes**: mutations mark their shard dirty;
  :meth:`save` persists only dirty shards (each atomically, checksummed,
  and -- see :meth:`SolveCache.save` -- merged under an advisory lock so
  a flush never silently discards another writer's entries).
- **per-shard quarantine**: each shard is a full
  :class:`~repro.cache.store.SolveCache`, so an unreadable shard file is
  moved aside to ``<shard>.corrupt`` and the other shards keep serving.

The shard count is fixed at creation and recorded in ``meta.json``;
opening an existing directory follows the recorded count (re-sharding a
live store would strand entries in unreachable files).
"""

import json
import os

from repro import telemetry
from repro.cache.store import DEFAULT_MAX_CORES, DEFAULT_MAX_ENTRIES, SolveCache

__all__ = ["ShardedSolveCache", "open_cache"]

#: Default shard count for new sharded stores.
DEFAULT_SHARDS = 4

_META_NAME = "meta.json"


def open_cache(path, shards=None, **kwargs):
    """Open the right cache flavor for ``path``.

    A directory (existing, or a path with no ``.json`` suffix when
    ``shards`` is requested) opens as a :class:`ShardedSolveCache`;
    anything else is a plain single-file :class:`SolveCache`.
    """
    path = os.fspath(path)
    if os.path.isdir(path) or shards:
        return ShardedSolveCache(path, shards=shards, **kwargs)
    return SolveCache(path=path, **kwargs)


class ShardedSolveCache:
    """N :class:`SolveCache` shards behind the single-store interface.

    Args:
        path: directory holding ``meta.json`` and ``shard-NN.json``
            files (created if missing).
        shards: shard count for a *new* store; an existing ``meta.json``
            wins over a conflicting request (with a
            ``cache.shard_count_pinned`` counter, not an error -- the
            store must keep serving).
        max_entries / max_cores: per-shard bounds.
        core_reuse: passed through to every shard.
    """

    def __init__(
        self,
        path,
        shards=None,
        max_entries=DEFAULT_MAX_ENTRIES,
        max_cores=DEFAULT_MAX_CORES,
        core_reuse=True,
    ):
        self.path = os.fspath(path)
        os.makedirs(self.path, exist_ok=True)
        recorded = self._read_meta()
        requested = shards or DEFAULT_SHARDS
        if recorded is None:
            self.shards = requested
            self._write_meta()
        else:
            if shards and shards != recorded:
                telemetry.counter_add("cache.shard_count_pinned")
            self.shards = recorded
        self.core_reuse = core_reuse
        self._stores = [
            SolveCache(
                path=os.path.join(self.path, f"shard-{index:02d}.json"),
                max_entries=max_entries,
                max_cores=max_cores,
                core_reuse=core_reuse,
            )
            for index in range(self.shards)
        ]
        self._dirty = set()

    # -- meta --------------------------------------------------------------

    def _meta_path(self):
        return os.path.join(self.path, _META_NAME)

    def _read_meta(self):
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            count = int(payload["shards"])
            if count < 1:
                raise ValueError(count)
            return count
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A garbled meta file: fall back to the default layout rather
            # than refusing to serve (shard files it mismatches will
            # simply quarantine themselves entry by entry).
            telemetry.counter_add("cache.quarantined", reason="meta")
            return None

    def _write_meta(self):
        temp = f"{self._meta_path()}.tmp.{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "shards": self.shards}, handle)
        os.replace(temp, self._meta_path())

    # -- routing -----------------------------------------------------------

    def _shard_for_key(self, key):
        return self._stores[int(str(key)[:8], 16) % self.shards]

    def _shard_for_core(self, digests):
        return self._stores[int(min(digests)[:8], 16) % self.shards]

    # -- the SolveCache interface ------------------------------------------

    def __len__(self):
        return sum(len(store) for store in self._stores)

    def __contains__(self, key):
        return key in self._shard_for_key(key)

    def get(self, key, kind="solve"):
        return self._shard_for_key(key).get(key, kind=kind)

    def put(self, key, entry, kind="solve"):
        store = self._shard_for_key(key)
        store.put(key, entry, kind=kind)
        self._dirty.add(store.path)

    def has_cores(self):
        return any(store.has_cores() for store in self._stores)

    def add_core(self, digests, kind="solve"):
        if not self.core_reuse:
            return False
        digests = frozenset(digests)
        if not digests:
            telemetry.counter_add("cache.core_rejected", reason="empty")
            return False
        store = self._shard_for_core(digests)
        stored = store.add_core(digests, kind=kind)
        if stored:
            self._dirty.add(store.path)
        return stored

    def find_core(self, digests, kind="solve"):
        """Probe every shard in index order (deterministic, N is small)."""
        if not self.core_reuse:
            return None
        for store in self._stores:
            core = store.find_core(digests, kind=kind)
            if core is not None:
                return core
        return None

    def clear(self):
        for store in self._stores:
            store.clear()
        self._dirty.clear()

    def stats(self):
        """Aggregated counters plus a per-shard entry breakdown."""
        totals = None
        for store in self._stores:
            shard_stats = store.stats()
            if totals is None:
                totals = dict(shard_stats)
            else:
                for field, value in shard_stats.items():
                    totals[field] += value
        totals["shards"] = self.shards
        totals["per_shard_entries"] = [len(store) for store in self._stores]
        return totals

    # -- persistence -------------------------------------------------------

    def save(self, force=False):
        """Flush dirty shards (all of them with ``force``); returns count.

        This is the service's batched flush: shards untouched since the
        last save cost nothing, and each flushed shard is written
        atomically under its own advisory lock.
        """
        flushed = 0
        for store in self._stores:
            if force or store.path in self._dirty:
                store.save()
                self._dirty.discard(store.path)
                flushed += 1
        telemetry.counter_add("cache.shard_flushes", flushed)
        return flushed
