"""The solve cache: a bounded LRU store with optional JSON persistence.

Entries are plain JSON-serializable dicts so a cache file written by one
process (or one ``run_all`` invocation) can warm any later one. Models
are encoded value-by-value (ints, booleans, fractions, bitvectors);
a model value the encoder does not recognize raises ``TypeError`` and
the caller skips caching that result rather than storing a lossy entry.

Hit/miss/eviction counts feed the :mod:`repro.telemetry` registry
(``cache.hit`` / ``cache.miss`` / ``cache.eviction``) and are also kept
on the store itself so the CLI can report them without telemetry. The
persistent file carries lifetime totals across sessions.
"""

import json
import os
from collections import OrderedDict
from fractions import Fraction

from repro import telemetry
from repro.smtlib.values import BVValue

#: Default in-memory entry bound; old entries are evicted LRU-first.
DEFAULT_MAX_ENTRIES = 4096

_FORMAT_VERSION = 1


# -- model value encoding ---------------------------------------------------


def encode_value(value):
    """Encode one model value as a JSON-safe tagged dict."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, Fraction):
        return {"t": "frac", "n": value.numerator, "d": value.denominator}
    if isinstance(value, BVValue):
        return {"t": "bv", "v": value.unsigned, "w": value.width}
    raise TypeError(f"cannot encode model value {value!r}")


def decode_value(encoded):
    """Inverse of :func:`encode_value`."""
    tag = encoded["t"]
    if tag == "bool":
        return bool(encoded["v"])
    if tag == "int":
        return int(encoded["v"])
    if tag == "frac":
        return Fraction(encoded["n"], encoded["d"])
    if tag == "bv":
        return BVValue(encoded["v"], encoded["w"])
    raise ValueError(f"unknown encoded value tag {tag!r}")


def encode_model(model):
    if model is None:
        return None
    return {name: encode_value(value) for name, value in model.items()}


def decode_model(encoded):
    if encoded is None:
        return None
    return {name: decode_value(value) for name, value in encoded.items()}


def entry_from_result(result):
    """Serialize a :class:`SolveResult` into a cache entry dict."""
    return {
        "status": result.status,
        "work": result.work,
        "engine": result.engine,
        "model": encode_model(result.model),
        "stats": dict(result.stats),
    }


def result_from_entry(entry):
    """Rehydrate a :class:`SolveResult` from a cache entry dict."""
    # Imported here: repro.solver's facade imports this module at load
    # time, so a top-level import would be circular.
    from repro.solver.result import SolveResult

    return SolveResult(
        entry["status"],
        decode_model(entry.get("model")),
        entry.get("work", 0),
        engine=entry.get("engine", ""),
        stats=dict(entry.get("stats") or {}),
        cached=True,
    )


# -- the store --------------------------------------------------------------


class SolveCache:
    """Bounded LRU cache of solve entries, optionally backed by a file.

    Args:
        path: JSON file to load from (if it exists) and :meth:`save` to.
        max_entries: in-memory bound; ``None`` means unbounded.
    """

    def __init__(self, path=None, max_entries=DEFAULT_MAX_ENTRIES):
        self.path = os.fspath(path) if path is not None else None
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0}
        if self.path is not None and os.path.exists(self.path):
            self._load()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, kind="solve"):
        """Look up an entry; returns None (and counts a miss) if absent."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            telemetry.counter_add("cache.miss", kind=kind)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        telemetry.counter_add("cache.hit", kind=kind)
        return entry

    def put(self, key, entry, kind="solve"):
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.counter_add("cache.eviction", kind=kind)

    def clear(self):
        self._entries.clear()

    def stats(self):
        """Session and lifetime counters plus the current entry count."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lifetime_hits": self._lifetime["hits"] + self.hits,
            "lifetime_misses": self._lifetime["misses"] + self.misses,
            "lifetime_evictions": self._lifetime["evictions"] + self.evictions,
        }

    # -- persistence -------------------------------------------------------

    def _load(self):
        with open(self.path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"cache file {self.path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        for key, entry in payload.get("entries", {}).items():
            self._entries[key] = entry
        stored = payload.get("stats", {})
        for field in self._lifetime:
            self._lifetime[field] = int(stored.get(field, 0))

    def save(self, path=None):
        """Write all entries (and lifetime stats) to the backing file."""
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("SolveCache has no path to save to")
        stats = self.stats()
        payload = {
            "version": _FORMAT_VERSION,
            "stats": {
                "hits": stats["lifetime_hits"],
                "misses": stats["lifetime_misses"],
                "evictions": stats["lifetime_evictions"],
            },
            "entries": dict(self._entries),
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        return target
