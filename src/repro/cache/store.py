"""The solve cache: a bounded LRU store with optional JSON persistence.

Entries are plain JSON-serializable dicts so a cache file written by one
process (or one ``run_all`` invocation) can warm any later one. Models
are encoded value-by-value (ints, booleans, fractions, bitvectors);
a model value the encoder does not recognize raises ``TypeError`` and
the caller skips caching that result rather than storing a lossy entry.

Hit/miss/eviction counts feed the :mod:`repro.telemetry` registry
(``cache.hit`` / ``cache.miss`` / ``cache.eviction``) and are also kept
on the store itself so the CLI can report them without telemetry. The
persistent file carries lifetime totals across sessions.

Persistence is crash-safe: files are written to a temp sibling and
atomically renamed into place, every entry carries a content checksum,
and a file (or entry) that fails to load is quarantined -- moved aside
to ``<path>.corrupt`` (or dropped) with a ``cache.quarantined`` counter
-- rather than aborting the run.
"""

import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from fractions import Fraction

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro import telemetry
from repro.errors import CacheError
from repro.guard import chaos
from repro.smtlib.values import BVValue

#: Default in-memory entry bound; old entries are evicted LRU-first.
DEFAULT_MAX_ENTRIES = 4096

#: Default bound on stored unsat cores (evicted oldest-first).
DEFAULT_MAX_CORES = 4096

#: Version 2 adds per-entry checksums; version 3 adds the unsat-core
#: section (with its own checksum). Older files still load.
_FORMAT_VERSION = 3
_ACCEPTED_VERSIONS = (1, 2, 3)


def _entry_checksum(entry):
    """Short content checksum for one cache entry dict."""
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@contextmanager
def _advisory_lock(path):
    """An exclusive advisory file lock (no-op where flock is missing).

    Serializes concurrent :meth:`SolveCache.save` calls across processes
    so the read-merge-write cycle is atomic with respect to other
    writers of the same file.
    """
    if fcntl is None:
        yield
        return
    handle = open(path, "a+", encoding="utf-8")
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()


# -- model value encoding ---------------------------------------------------


def encode_value(value):
    """Encode one model value as a JSON-safe tagged dict."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, Fraction):
        return {"t": "frac", "n": value.numerator, "d": value.denominator}
    if isinstance(value, BVValue):
        return {"t": "bv", "v": value.unsigned, "w": value.width}
    raise TypeError(f"cannot encode model value {value!r}")


def decode_value(encoded):
    """Inverse of :func:`encode_value`."""
    tag = encoded["t"]
    if tag == "bool":
        return bool(encoded["v"])
    if tag == "int":
        return int(encoded["v"])
    if tag == "frac":
        return Fraction(encoded["n"], encoded["d"])
    if tag == "bv":
        return BVValue(encoded["v"], encoded["w"])
    raise ValueError(f"unknown encoded value tag {tag!r}")


def encode_model(model):
    if model is None:
        return None
    return {name: encode_value(value) for name, value in model.items()}


def decode_model(encoded):
    if encoded is None:
        return None
    return {name: decode_value(value) for name, value in encoded.items()}


def entry_from_result(result):
    """Serialize a :class:`SolveResult` into a cache entry dict."""
    return {
        "status": result.status,
        "work": result.work,
        "engine": result.engine,
        "model": encode_model(result.model),
        "stats": dict(result.stats),
    }


def result_from_entry(entry):
    """Rehydrate a :class:`SolveResult` from a cache entry dict."""
    # Imported here: repro.solver's facade imports this module at load
    # time, so a top-level import would be circular.
    from repro.solver.result import SolveResult

    return SolveResult(
        entry["status"],
        decode_model(entry.get("model")),
        entry.get("work", 0),
        engine=entry.get("engine", ""),
        stats=dict(entry.get("stats") or {}),
        cached=True,
    )


def entry_from_refine_round(round_result):
    """Serialize one incremental :class:`RefinementRound` for the cache.

    Only conclusive rounds should be stored (the caller enforces this):
    an ``unknown`` is a budget artifact, not a fact about the script.
    The core rides along because the *next* round's widths are computed
    from it -- a warm replay must widen exactly like the cold run did.
    """
    return {
        "kind": "refine-round",
        "mode": "incremental",
        "status": round_result.status,
        "work": round_result.work,
        "core": list(round_result.core),
        "guard_core": round_result.guard_core,
        "root_conflict": round_result.root_conflict,
        "assumed": round_result.assumed,
        "reused": round_result.reused_clauses,
        "new_clauses": round_result.new_clauses,
        "model": encode_model(round_result.model),
    }


def refine_round_from_entry(entry):
    """Rehydrate an incremental round record from a cache entry."""
    from repro.bv.solver import RefinementRound

    return RefinementRound(
        entry["status"],
        decode_model(entry.get("model")),
        entry.get("work", 0),
        tuple(entry.get("core") or ()),
        bool(entry.get("guard_core")),
        bool(entry.get("root_conflict")),
        entry.get("assumed", 0),
        entry.get("reused", 0),
        entry.get("new_clauses", 0),
    )


def entry_from_report(report):
    """Serialize a scratch-round :class:`ArbitrageReport` for the cache."""
    return {
        "kind": "refine-round",
        "mode": "scratch",
        "case": report.case,
        "t_trans": report.t_trans,
        "t_post": report.t_post,
        "t_check": report.t_check,
        "width": None if report.width is None else int(report.width),
        "bounded_status": report.bounded_status,
        "model": encode_model(report.model),
    }


def report_from_entry(entry):
    """Rehydrate a scratch-round :class:`ArbitrageReport`.

    The inference and fixed-point shape are not persisted; a rehydrated
    report carries the verdict, model, and cost split -- everything the
    refinement loop and the evaluation read.
    """
    from repro.core.pipeline import ArbitrageReport

    report = ArbitrageReport(
        entry["case"],
        model=decode_model(entry.get("model")),
        t_trans=entry.get("t_trans", 0),
        t_post=entry.get("t_post", 0),
        t_check=entry.get("t_check", 0),
        width=entry.get("width"),
        bounded_status=entry.get("bounded_status"),
    )
    report.stats["case"] = report.case
    return report


# -- the store --------------------------------------------------------------


class SolveCache:
    """Bounded LRU cache of solve entries, optionally backed by a file.

    Besides whole-key entries the store keeps *unsat cores*: canonical
    per-assertion digest sets proven unsatisfiable. A whole-key miss can
    still be answered ``unsat`` when some stored core is a subset of the
    query's digest set (Cache-a-lot style subsumption; see
    :meth:`find_core`).

    Args:
        path: JSON file to load from (if it exists) and :meth:`save` to.
        max_entries: in-memory bound; ``None`` means unbounded.
        max_cores: bound on stored unsat cores; ``None`` means unbounded.
        core_reuse: when False, :meth:`add_core` and :meth:`find_core`
            are no-ops -- the differential suites use this to get a
            reuse-disabled oracle with otherwise identical caching.
    """

    def __init__(
        self,
        path=None,
        max_entries=DEFAULT_MAX_ENTRIES,
        max_cores=DEFAULT_MAX_CORES,
        core_reuse=True,
    ):
        self.path = os.fspath(path) if path is not None else None
        self.max_entries = max_entries
        self.max_cores = max_cores
        self.core_reuse = core_reuse
        self._entries = OrderedDict()
        self._kinds = {}
        self._cores = OrderedDict()  # core id -> frozenset of digests
        self._core_index = {}  # min digest -> [core id, ...]
        self._core_seen = set()  # the digest frozensets themselves
        self._next_core_id = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.core_hits = 0
        self.cores_stored = 0
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0, "core_hits": 0}
        if self.path is not None and os.path.exists(self.path):
            try:
                self._load()
            except (OSError, ValueError, KeyError, TypeError, CacheError):
                self._quarantine_file()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, kind="solve"):
        """Look up an entry; returns None (and counts a miss) if absent."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            telemetry.counter_add("cache.miss", kind=kind)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        telemetry.counter_add("cache.hit", kind=kind)
        return entry

    def put(self, key, entry, kind="solve"):
        """Insert (or refresh) an entry, evicting LRU past the bound.

        Evictions are attributed to the *victim* entry's kind, not the
        kind being inserted -- the two differ whenever a fresh solve
        entry pushes out an old arbitrage record, and the eviction
        telemetry must report what was dropped.
        """
        self._entries[key] = entry
        self._kinds[key] = kind
        self._entries.move_to_end(key)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            victim, _ = self._entries.popitem(last=False)
            victim_kind = self._kinds.pop(victim, "solve")
            self.evictions += 1
            telemetry.counter_add("cache.eviction", kind=victim_kind)

    def clear(self):
        """Drop every entry and core, roll counters, persist if backed.

        Session counters are rolled into the lifetime totals (a clear is
        an event in the store's history, not amnesia about it), and when
        the store has a path the emptied state is written atomically --
        otherwise a later :meth:`save` would resurrect the cleared
        entries from the old file.
        """
        for field in self._lifetime:
            self._lifetime[field] += getattr(self, field)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.core_hits = 0
        self.cores_stored = 0
        self._entries.clear()
        self._kinds.clear()
        self._cores.clear()
        self._core_index.clear()
        self._core_seen.clear()
        if self.path is not None:
            self.save(merge=False)

    def stats(self):
        """Session and lifetime counters plus the current entry count."""
        return {
            "entries": len(self._entries),
            "cores": len(self._cores),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "core_hits": self.core_hits,
            "cores_stored": self.cores_stored,
            "lifetime_hits": self._lifetime["hits"] + self.hits,
            "lifetime_misses": self._lifetime["misses"] + self.misses,
            "lifetime_evictions": self._lifetime["evictions"] + self.evictions,
            "lifetime_core_hits": self._lifetime["core_hits"] + self.core_hits,
        }

    # -- unsat-core subsumption (Cache-a-lot) ------------------------------

    def has_cores(self):
        """True when at least one unsat core is stored (cheap pre-check)."""
        return bool(self._cores)

    def add_core(self, digests, kind="solve"):
        """Store an unsat core as a frozenset of canonical digests.

        Guards (soundness first): an empty core is rejected outright --
        it would subsume *every* future query -- and callers must never
        pass cores from chaos-tainted or budget-truncated results. A
        core equal to or subsumed by an already-stored core is redundant
        (the stored one answers at least as many queries) and skipped.

        Returns True iff the core was stored.
        """
        if not self.core_reuse:
            return False
        digests = frozenset(digests)
        if not digests:
            telemetry.counter_add("cache.core_rejected", reason="empty")
            return False
        if digests in self._core_seen:
            return False
        if self._subsuming_core(digests) is not None:
            telemetry.counter_add("cache.core_rejected", reason="redundant")
            return False
        core_id = self._next_core_id
        self._next_core_id += 1
        self._cores[core_id] = digests
        self._core_seen.add(digests)
        self._core_index.setdefault(min(digests), []).append(core_id)
        self.cores_stored += 1
        telemetry.counter_add("cache.core_stored", kind=kind)
        while self.max_cores is not None and len(self._cores) > self.max_cores:
            victim_id, victim = self._cores.popitem(last=False)
            self._core_seen.discard(victim)
            bucket = self._core_index.get(min(victim))
            if bucket is not None:
                bucket.remove(victim_id)
                if not bucket:
                    del self._core_index[min(victim)]
            telemetry.counter_add("cache.core_eviction")
        return True

    def _subsuming_core(self, digests):
        """Some stored core that is a subset of ``digests``, or None.

        Lookup is *indexed*, not a linear scan: every core is filed
        under its minimum digest, and a core can only be a subset of the
        query if that representative digest appears in the query -- so
        only the buckets of the query's own digests are examined.
        Iteration is over the sorted query digests (then insertion order
        within a bucket), so the answer is deterministic.
        """
        if not self._cores:
            return None
        for digest in sorted(digests):
            for core_id in self._core_index.get(digest, ()):
                core = self._cores[core_id]
                if core <= digests:
                    return core
        return None

    def find_core(self, digests, kind="solve"):
        """Answer a query by core subsumption.

        Returns a stored core whose digest set is a subset of the
        query's ``digests`` (proving the query unsat with zero solving),
        or None. Hits count ``cache.core_hit``; there is deliberately no
        miss counter -- every whole-key miss already counts
        ``cache.miss``.
        """
        if not self.core_reuse or not self._cores:
            return None
        core = self._subsuming_core(frozenset(digests))
        if core is None:
            return None
        self.core_hits += 1
        telemetry.counter_add("cache.core_hit", kind=kind)
        return core

    # -- persistence -------------------------------------------------------

    def _quarantine_file(self):
        """Move an unreadable cache file aside and start empty."""
        self._entries.clear()
        self._kinds.clear()
        self._cores.clear()
        self._core_index.clear()
        self._core_seen.clear()
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0, "core_hits": 0}
        quarantine = f"{self.path}.corrupt"
        try:
            os.replace(self.path, quarantine)
        except OSError:
            pass  # e.g. vanished between the failed read and now
        self.quarantined += 1
        telemetry.counter_add("cache.quarantined", reason="file")

    def _load(self):
        with open(self.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        fault = chaos.inject("cache.load", salt=self.path)
        if fault is not None:
            text = fault.garble(text)
        payload = json.loads(text)
        version = payload.get("version")
        if version not in _ACCEPTED_VERSIONS:
            raise CacheError(
                f"cache file {self.path} has unsupported version {version!r}"
            )
        entries = payload.get("entries", {})
        if version >= 2:
            # Version 2 writes a checksum for every entry: an entry whose
            # checksum is missing or wrong is bit-rot (or a torn
            # concurrent writer) -- drop it, keep the rest of the file.
            checksums = payload.get("checksums") or {}
            for key, entry in entries.items():
                if _entry_checksum(entry) != checksums.get(key):
                    self.quarantined += 1
                    telemetry.counter_add("cache.quarantined", reason="checksum")
                    continue
                self._entries[key] = entry
            # An orphaned checksum means the entry key itself was garbled.
            for key in checksums:
                if key not in entries:
                    self.quarantined += 1
                    telemetry.counter_add("cache.quarantined", reason="checksum")
        else:
            self._entries.update(entries)
        for key, entry in self._entries.items():
            if isinstance(entry, dict):
                self._kinds[key] = entry.get("kind", "solve")
        if version >= 3:
            # Cores carry their own checksum: a garbled core section is
            # dropped wholesale (a missing core is only a missed
            # shortcut; a corrupted one could be unsound).
            cores = payload.get("cores") or []
            if cores and _entry_checksum(cores) != payload.get("cores_checksum"):
                self.quarantined += 1
                telemetry.counter_add("cache.quarantined", reason="cores")
            else:
                for digests in cores:
                    self._install_core(frozenset(digests))
        stored = payload.get("stats", {})
        for field in self._lifetime:
            self._lifetime[field] = int(stored.get(field, 0))

    def _install_core(self, digests):
        """Silently re-index one persisted core (guards, no telemetry)."""
        if not digests or digests in self._core_seen:
            return
        core_id = self._next_core_id
        self._next_core_id += 1
        self._cores[core_id] = digests
        self._core_seen.add(digests)
        self._core_index.setdefault(min(digests), []).append(core_id)

    def _merge_from_disk(self, target):
        """Fold another writer's entries from ``target`` into this store.

        Called under the save lock: any entry (or core) on disk that this
        store does not hold was written by a concurrent process after we
        loaded, and overwriting it blind would silently discard that
        worker's results. Disk-only entries join at the cold (LRU-first)
        end -- our own entries are fresher -- capped so the merge never
        evicts anything we hold; entries failing their checksum are
        skipped (bit-rot does not deserve rescue). Lifetime stats merge
        by elementwise max, which never double-counts a shared base.
        """
        try:
            with open(target, "r", encoding="utf-8") as handle:
                payload = json.loads(handle.read())
        except (OSError, ValueError):
            return  # unreadable previous file: nothing mergeable
        if not isinstance(payload, dict):
            return
        version = payload.get("version")
        if version not in _ACCEPTED_VERSIONS:
            return
        entries = payload.get("entries")
        checksums = payload.get("checksums") or {}
        merged = OrderedDict()
        if isinstance(entries, dict):
            for key, entry in entries.items():
                if key in self._entries:
                    continue
                if version >= 2 and _entry_checksum(entry) != checksums.get(key):
                    continue
                merged[key] = entry
        if self.max_entries is not None:
            room = self.max_entries - len(self._entries)
            while len(merged) > max(0, room):
                # Disk order is cold-to-hot: drop the coldest first.
                merged.popitem(last=False)
                telemetry.counter_add("cache.merge_dropped")
        if merged:
            combined = OrderedDict(merged)
            combined.update(self._entries)
            self._entries = combined
            for key, entry in merged.items():
                if isinstance(entry, dict):
                    self._kinds[key] = entry.get("kind", "solve")
            telemetry.counter_add("cache.merged", len(merged))
        if version >= 3 and self.core_reuse:
            cores = payload.get("cores") or []
            if cores and _entry_checksum(cores) == payload.get("cores_checksum"):
                for digests in cores:
                    self._install_core(frozenset(digests))
        stored = payload.get("stats") or {}
        for field in self._lifetime:
            try:
                self._lifetime[field] = max(
                    self._lifetime[field], int(stored.get(field, 0))
                )
            except (TypeError, ValueError):
                continue

    def save(self, path=None, merge=True):
        """Atomically write all entries (and lifetime stats) to the file.

        The payload lands in a temp sibling first and is renamed over the
        target with :func:`os.replace`, so a crash mid-write can never
        leave a truncated cache behind. The whole cycle runs under an
        advisory file lock, and entries another process persisted since
        we last loaded are merged in first (see :meth:`_merge_from_disk`)
        -- two workers flushing the same shard keep both result sets
        instead of last-writer-wins. ``merge=False`` writes this store's
        state verbatim (:meth:`clear` uses it: a clear must not
        resurrect what it just dropped).
        """
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("SolveCache has no path to save to")
        with _advisory_lock(f"{target}.lock"):
            if merge and os.path.exists(target):
                self._merge_from_disk(target)
            stats = self.stats()
            entries = dict(self._entries)
            cores = [sorted(digests) for digests in self._cores.values()]
            payload = {
                "version": _FORMAT_VERSION,
                "stats": {
                    "hits": stats["lifetime_hits"],
                    "misses": stats["lifetime_misses"],
                    "evictions": stats["lifetime_evictions"],
                    "core_hits": stats["lifetime_core_hits"],
                },
                "entries": entries,
                "checksums": {
                    key: _entry_checksum(entry) for key, entry in entries.items()
                },
                "cores": cores,
                "cores_checksum": _entry_checksum(cores),
            }
            text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
            fault = chaos.inject("cache.persist", salt=str(target))
            if fault is not None:
                text = fault.garble(text)
            temp = f"{target}.tmp.{os.getpid()}"
            try:
                with open(temp, "w", encoding="utf-8") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, target)
            finally:
                if os.path.exists(temp):
                    os.remove(temp)
        return target
