"""The solve cache: a bounded LRU store with optional JSON persistence.

Entries are plain JSON-serializable dicts so a cache file written by one
process (or one ``run_all`` invocation) can warm any later one. Models
are encoded value-by-value (ints, booleans, fractions, bitvectors);
a model value the encoder does not recognize raises ``TypeError`` and
the caller skips caching that result rather than storing a lossy entry.

Hit/miss/eviction counts feed the :mod:`repro.telemetry` registry
(``cache.hit`` / ``cache.miss`` / ``cache.eviction``) and are also kept
on the store itself so the CLI can report them without telemetry. The
persistent file carries lifetime totals across sessions.

Persistence is crash-safe: files are written to a temp sibling and
atomically renamed into place, every entry carries a content checksum,
and a file (or entry) that fails to load is quarantined -- moved aside
to ``<path>.corrupt`` (or dropped) with a ``cache.quarantined`` counter
-- rather than aborting the run.
"""

import hashlib
import json
import os
from collections import OrderedDict
from fractions import Fraction

from repro import telemetry
from repro.errors import CacheError
from repro.guard import chaos
from repro.smtlib.values import BVValue

#: Default in-memory entry bound; old entries are evicted LRU-first.
DEFAULT_MAX_ENTRIES = 4096

#: Version 2 adds per-entry checksums; version-1 files still load.
_FORMAT_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)


def _entry_checksum(entry):
    """Short content checksum for one cache entry dict."""
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# -- model value encoding ---------------------------------------------------


def encode_value(value):
    """Encode one model value as a JSON-safe tagged dict."""
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, Fraction):
        return {"t": "frac", "n": value.numerator, "d": value.denominator}
    if isinstance(value, BVValue):
        return {"t": "bv", "v": value.unsigned, "w": value.width}
    raise TypeError(f"cannot encode model value {value!r}")


def decode_value(encoded):
    """Inverse of :func:`encode_value`."""
    tag = encoded["t"]
    if tag == "bool":
        return bool(encoded["v"])
    if tag == "int":
        return int(encoded["v"])
    if tag == "frac":
        return Fraction(encoded["n"], encoded["d"])
    if tag == "bv":
        return BVValue(encoded["v"], encoded["w"])
    raise ValueError(f"unknown encoded value tag {tag!r}")


def encode_model(model):
    if model is None:
        return None
    return {name: encode_value(value) for name, value in model.items()}


def decode_model(encoded):
    if encoded is None:
        return None
    return {name: decode_value(value) for name, value in encoded.items()}


def entry_from_result(result):
    """Serialize a :class:`SolveResult` into a cache entry dict."""
    return {
        "status": result.status,
        "work": result.work,
        "engine": result.engine,
        "model": encode_model(result.model),
        "stats": dict(result.stats),
    }


def result_from_entry(entry):
    """Rehydrate a :class:`SolveResult` from a cache entry dict."""
    # Imported here: repro.solver's facade imports this module at load
    # time, so a top-level import would be circular.
    from repro.solver.result import SolveResult

    return SolveResult(
        entry["status"],
        decode_model(entry.get("model")),
        entry.get("work", 0),
        engine=entry.get("engine", ""),
        stats=dict(entry.get("stats") or {}),
        cached=True,
    )


def entry_from_refine_round(round_result):
    """Serialize one incremental :class:`RefinementRound` for the cache.

    Only conclusive rounds should be stored (the caller enforces this):
    an ``unknown`` is a budget artifact, not a fact about the script.
    The core rides along because the *next* round's widths are computed
    from it -- a warm replay must widen exactly like the cold run did.
    """
    return {
        "kind": "refine-round",
        "mode": "incremental",
        "status": round_result.status,
        "work": round_result.work,
        "core": list(round_result.core),
        "guard_core": round_result.guard_core,
        "root_conflict": round_result.root_conflict,
        "assumed": round_result.assumed,
        "reused": round_result.reused_clauses,
        "new_clauses": round_result.new_clauses,
        "model": encode_model(round_result.model),
    }


def refine_round_from_entry(entry):
    """Rehydrate an incremental round record from a cache entry."""
    from repro.bv.solver import RefinementRound

    return RefinementRound(
        entry["status"],
        decode_model(entry.get("model")),
        entry.get("work", 0),
        tuple(entry.get("core") or ()),
        bool(entry.get("guard_core")),
        bool(entry.get("root_conflict")),
        entry.get("assumed", 0),
        entry.get("reused", 0),
        entry.get("new_clauses", 0),
    )


def entry_from_report(report):
    """Serialize a scratch-round :class:`ArbitrageReport` for the cache."""
    return {
        "kind": "refine-round",
        "mode": "scratch",
        "case": report.case,
        "t_trans": report.t_trans,
        "t_post": report.t_post,
        "t_check": report.t_check,
        "width": None if report.width is None else int(report.width),
        "bounded_status": report.bounded_status,
        "model": encode_model(report.model),
    }


def report_from_entry(entry):
    """Rehydrate a scratch-round :class:`ArbitrageReport`.

    The inference and fixed-point shape are not persisted; a rehydrated
    report carries the verdict, model, and cost split -- everything the
    refinement loop and the evaluation read.
    """
    from repro.core.pipeline import ArbitrageReport

    report = ArbitrageReport(
        entry["case"],
        model=decode_model(entry.get("model")),
        t_trans=entry.get("t_trans", 0),
        t_post=entry.get("t_post", 0),
        t_check=entry.get("t_check", 0),
        width=entry.get("width"),
        bounded_status=entry.get("bounded_status"),
    )
    report.stats["case"] = report.case
    return report


# -- the store --------------------------------------------------------------


class SolveCache:
    """Bounded LRU cache of solve entries, optionally backed by a file.

    Args:
        path: JSON file to load from (if it exists) and :meth:`save` to.
        max_entries: in-memory bound; ``None`` means unbounded.
    """

    def __init__(self, path=None, max_entries=DEFAULT_MAX_ENTRIES):
        self.path = os.fspath(path) if path is not None else None
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0}
        if self.path is not None and os.path.exists(self.path):
            try:
                self._load()
            except (OSError, ValueError, KeyError, TypeError, CacheError):
                self._quarantine_file()

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key, kind="solve"):
        """Look up an entry; returns None (and counts a miss) if absent."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            telemetry.counter_add("cache.miss", kind=kind)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        telemetry.counter_add("cache.hit", kind=kind)
        return entry

    def put(self, key, entry, kind="solve"):
        """Insert (or refresh) an entry, evicting LRU past the bound."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while self.max_entries is not None and len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            telemetry.counter_add("cache.eviction", kind=kind)

    def clear(self):
        self._entries.clear()

    def stats(self):
        """Session and lifetime counters plus the current entry count."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "lifetime_hits": self._lifetime["hits"] + self.hits,
            "lifetime_misses": self._lifetime["misses"] + self.misses,
            "lifetime_evictions": self._lifetime["evictions"] + self.evictions,
        }

    # -- persistence -------------------------------------------------------

    def _quarantine_file(self):
        """Move an unreadable cache file aside and start empty."""
        self._entries.clear()
        self._lifetime = {"hits": 0, "misses": 0, "evictions": 0}
        quarantine = f"{self.path}.corrupt"
        try:
            os.replace(self.path, quarantine)
        except OSError:
            pass  # e.g. vanished between the failed read and now
        self.quarantined += 1
        telemetry.counter_add("cache.quarantined", reason="file")

    def _load(self):
        with open(self.path, "r", encoding="utf-8") as handle:
            text = handle.read()
        fault = chaos.inject("cache.load", salt=self.path)
        if fault is not None:
            text = fault.garble(text)
        payload = json.loads(text)
        version = payload.get("version")
        if version not in _ACCEPTED_VERSIONS:
            raise CacheError(
                f"cache file {self.path} has unsupported version {version!r}"
            )
        entries = payload.get("entries", {})
        if version >= 2:
            # Version 2 writes a checksum for every entry: an entry whose
            # checksum is missing or wrong is bit-rot (or a torn
            # concurrent writer) -- drop it, keep the rest of the file.
            checksums = payload.get("checksums") or {}
            for key, entry in entries.items():
                if _entry_checksum(entry) != checksums.get(key):
                    self.quarantined += 1
                    telemetry.counter_add("cache.quarantined", reason="checksum")
                    continue
                self._entries[key] = entry
            # An orphaned checksum means the entry key itself was garbled.
            for key in checksums:
                if key not in entries:
                    self.quarantined += 1
                    telemetry.counter_add("cache.quarantined", reason="checksum")
        else:
            self._entries.update(entries)
        stored = payload.get("stats", {})
        for field in self._lifetime:
            self._lifetime[field] = int(stored.get(field, 0))

    def save(self, path=None):
        """Atomically write all entries (and lifetime stats) to the file.

        The payload lands in a temp sibling first and is renamed over the
        target with :func:`os.replace`, so a crash mid-write can never
        leave a truncated cache behind.
        """
        target = path if path is not None else self.path
        if target is None:
            raise ValueError("SolveCache has no path to save to")
        stats = self.stats()
        entries = dict(self._entries)
        payload = {
            "version": _FORMAT_VERSION,
            "stats": {
                "hits": stats["lifetime_hits"],
                "misses": stats["lifetime_misses"],
                "evictions": stats["lifetime_evictions"],
            },
            "entries": entries,
            "checksums": {
                key: _entry_checksum(entry) for key, entry in entries.items()
            },
        }
        text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
        fault = chaos.inject("cache.persist", salt=str(target))
        if fault is not None:
            text = fault.garble(text)
        temp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, target)
        finally:
            if os.path.exists(temp):
                os.remove(temp)
        return target
