"""Canonical cache keys for normalized SMT-LIB scripts.

The solve cache must never return a wrong answer, so the key is the
*semantic identity* of the script as far as we can cheaply canonicalize
it: a normalization pass (built on the :mod:`repro.slot.passes`
machinery) orders the arguments of commutative operators by their
printed form, assertions are de-duplicated and sorted, declarations are
sorted by name, and the result is printed back to SMT-LIB text. Two
scripts that normalize to the same text are permutations of the same
conjunction over the same variables, so they have the same models.

The canonical text is *stable under re-printing*:
``canonical_text(parse(canonical_text(s))) == canonical_text(s)`` --
property-tested in ``tests/test_printer_property.py``. Without that
property a cache key could drift between a first solve and a later
lookup and silently miss (or worse, a collision could return a wrong
result).

Solve parameters that change the *outcome* (profile, budget) are mixed
into the digest, never into the script text.
"""

import hashlib

from repro.slot.passes import Pass
from repro.smtlib.printer import print_term
from repro.smtlib.terms import Op, Term, map_terms

#: Operators whose argument order does not affect the term's value.
#: (Chained ``=`` means "all equal" and ``distinct`` means "pairwise
#: distinct", so both are permutation-invariant even n-ary.)
COMMUTATIVE_OPS = frozenset(
    {
        Op.AND,
        Op.OR,
        Op.XOR,
        Op.EQ,
        Op.DISTINCT,
        Op.ADD,
        Op.MUL,
        Op.BVADD,
        Op.BVMUL,
        Op.BVAND,
        Op.BVOR,
        Op.BVXOR,
    }
)


class CanonicalOrder(Pass):
    """Order commutative arguments by printed form (a slot-style pass)."""

    name = "canonical-order"

    def rewrite(self, term, new_args):
        term = self._rebuild(term, new_args)
        if term.op in COMMUTATIVE_OPS and len(term.args) > 1:
            ordered = tuple(sorted(term.args, key=print_term))
            if ordered != term.args:
                return Term(term.op, ordered, term.payload, term.sort)
        return term


def normalize_assertions(assertions):
    """Canonically ordered, de-duplicated assertion terms."""
    canonical = CanonicalOrder()
    rewritten = map_terms(assertions, canonical.rewrite)
    unique = {}
    for term in rewritten:
        unique.setdefault(term.tid, term)
    return sorted(unique.values(), key=print_term)


def canonical_text(script):
    """The normalized printed form of a script (the cache-key body)."""
    logic = script.logic or script.infer_logic()
    lines = [f"(set-logic {logic})"]
    for name in sorted(script.declarations):
        lines.append(f"(declare-fun {name} () {script.declarations[name].name})")
    for term in normalize_assertions(script.assertions):
        lines.append(f"(assert {print_term(term)})")
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


#: Memo for :func:`assertion_digest`, keyed by term identity. Terms are
#: hash-consed process-wide, so a tid never maps to two different terms;
#: the cap only bounds memory on very long-running processes.
_DIGEST_MEMO = {}
_DIGEST_MEMO_LIMIT = 1 << 16


def assertion_digest(term):
    """Canonical content digest of one assertion.

    The digest covers the *canonicalized* printed form of the term (the
    same :class:`CanonicalOrder` normalization the whole-script key uses)
    plus the sorts of every variable the term mentions. Two assertions
    share a digest iff they are the same constraint over identically
    sorted variables -- which is exactly the equivalence unsat-core
    subsumption needs: a cached core whose digests all appear in a new
    query's digest set is a genuine subset of the new conjunction, so the
    new script is unsat too. Comparing digests (never raw text) keeps the
    subset check canonical under argument permutation and duplicate
    assertions.
    """
    cached = _DIGEST_MEMO.get(term.tid)
    if cached is not None:
        return cached
    canonical = CanonicalOrder()
    rewritten = map_terms([term], canonical.rewrite)[0]
    variables = term.variables()
    sorts = ",".join(
        f"{name}:{variables[name].sort.name}" for name in sorted(variables)
    )
    payload = f"{print_term(rewritten)}|{sorts}"
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
    if len(_DIGEST_MEMO) >= _DIGEST_MEMO_LIMIT:
        _DIGEST_MEMO.clear()
    _DIGEST_MEMO[term.tid] = digest
    return digest


def script_digests(script):
    """The script's assertion set as a frozenset of canonical digests.

    Duplicate assertions collapse (a set is what subsumption compares),
    matching the de-duplication :func:`canonical_text` applies.
    """
    return frozenset(assertion_digest(term) for term in script.assertions)


def cache_key(script, profile=None, budget=None, kind="solve", extra=None):
    """A stable hex digest identifying one (script, parameters) solve.

    Args:
        script: the :class:`~repro.smtlib.script.Script` to key.
        profile: solver profile name (affects the answer's work/status).
        budget: unified work budget (affects ``unknown`` outcomes).
        kind: namespace tag (``"solve"`` or ``"arbitrage"``).
        extra: optional mapping of further discriminating parameters
            (e.g. the width strategy for arbitrage records).
    """
    digest = hashlib.sha256()
    digest.update(canonical_text(script).encode("utf-8"))
    digest.update(f"|kind={kind}|profile={profile}|budget={budget}".encode("utf-8"))
    if extra:
        for key in sorted(extra):
            digest.update(f"|{key}={extra[key]}".encode("utf-8"))
    return digest.hexdigest()


class ScopeKeyChain:
    """Incremental, scope-prefix-aware cache keys for a session.

    A session's question at each ``check-sat`` is determined by the live
    assertion stack. Rather than re-canonicalizing the whole flattened
    script per check (O(stack)), the chain keeps one digest per scope:
    ``digest(scope_k) = H(digest(scope_{k-1}) || canonical slice text)``.
    Pushing starts a new link, popping truncates, and asserting only
    invalidates the top link -- so computing the key for a check costs
    O(top slice), and two sessions that reach the same scope stack
    through any interleaving of push/pop get the same key.

    The canonical slice text sorts the slice's assertions by their
    canonically-ordered printed form (the same normalization the whole-
    script :func:`canonical_text` uses), so assertion order within one
    scope does not split the cache.

    Scope *boundaries* are deliberately part of the identity: ``[A B]``
    and ``[A | B]`` flatten to the same conjunction but key differently.
    That is conservative (never wrong, occasionally a duplicate entry)
    and what makes the prefix reuse sound.
    """

    _ROOT = "staub-session-v1"

    def __init__(self):
        self._slices = [[]]  # per scope: canonical assertion strings
        self._digests = [None]  # lazily computed chain digests

    @property
    def depth(self):
        """Number of pushed scopes (the root scope is depth 0)."""
        return len(self._slices) - 1

    def push(self, count=1):
        for _ in range(count):
            self._slices.append([])
            self._digests.append(None)

    def pop(self, count=1):
        if count > self.depth:
            raise ValueError(f"pop {count} below scope depth {self.depth}")
        del self._slices[len(self._slices) - count :]
        del self._digests[len(self._digests) - count :]

    def reset(self):
        self._slices = [[]]
        self._digests = [None]

    def add_assertion(self, term):
        canonical = CanonicalOrder()
        rewritten = map_terms([term], canonical.rewrite)[0]
        self._slices[-1].append(print_term(rewritten))
        self._digests[-1] = None

    def _chain_digest(self, index):
        cached = self._digests[index]
        if cached is not None:
            return cached
        parent = self._ROOT if index == 0 else self._chain_digest(index - 1)
        digest = hashlib.sha256()
        digest.update(parent.encode("utf-8"))
        for line in sorted(set(self._slices[index])):
            digest.update(b"\x00")
            digest.update(line.encode("utf-8"))
        value = digest.hexdigest()
        self._digests[index] = value
        return value

    def key(self, declarations, profile=None, budget=None):
        """The cache key for a ``check-sat`` of the current stack.

        Args:
            declarations: name -> sort mapping (part of the question: the
                same assertions over different sorts differ).
            profile / budget: solve parameters, mixed in exactly like
                :func:`cache_key` mixes them for whole scripts.
        """
        digest = hashlib.sha256()
        digest.update(self._chain_digest(len(self._slices) - 1).encode("utf-8"))
        for name in sorted(declarations):
            digest.update(f"|{name}:{declarations[name].name}".encode("utf-8"))
        digest.update(
            f"|kind=session|profile={profile}|budget={budget}".encode("utf-8")
        )
        return digest.hexdigest()


def refine_round_key(script, widths, mode, max_width):
    """Key for one width-refinement round of ``script``.

    Rounds are keyed on the *original* (unbounded) script plus the exact
    width state the round solved at -- a scalar for the scratch loop, a
    per-variable mapping for the incremental engine -- so a warm
    refinement replay hits round by round. Budgets are deliberately not
    part of the key: only conclusive (sat/unsat) rounds are ever stored,
    and those do not depend on how much budget was left.

    Args:
        script: the original script the refinement loop runs on.
        widths: an int (scratch round) or a name -> width mapping
            (incremental round).
        mode: ``"scratch"`` or ``"incremental"``.
        max_width: the loop's width ceiling (part of the incremental
            encoding, so it discriminates).
    """
    if isinstance(widths, dict):
        state = ",".join(f"{name}:{widths[name]}" for name in sorted(widths))
    else:
        state = str(widths)
    return cache_key(
        script,
        kind="refine-round",
        extra={"mode": mode, "widths": state, "max_width": max_width},
    )
