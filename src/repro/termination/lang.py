"""A small integer while-language.

Programs are straight-line initialization followed by a single guarded
loop with affine updates -- the fragment linear ranking-function synthesis
handles, and the shape of the SV-COMP termination tasks the paper's RQ3
draws on::

    x := 12; y := 0;
    while (x > 0 and y < 40) { x := x - 1; y := y + 2; }

Guards are conjunctions of affine comparisons; updates are simultaneous
affine assignments.
"""

import re

from repro.errors import ParseError


class Assign:
    """``name := constant + sum coeff * var`` (affine RHS).

    Attributes:
        name: assigned variable.
        constant: integer constant term.
        coefficients: var name -> integer coefficient.
    """

    __slots__ = ("name", "constant", "coefficients")

    def __init__(self, name, constant=0, coefficients=None):
        self.name = name
        self.constant = constant
        self.coefficients = dict(coefficients or {})

    def evaluate(self, state):
        value = self.constant
        for var, coefficient in self.coefficients.items():
            value += coefficient * state[var]
        return value

    def __repr__(self):
        parts = [str(self.constant)] if self.constant or not self.coefficients else []
        for var, coefficient in sorted(self.coefficients.items()):
            parts.append(f"{coefficient}*{var}")
        return f"{self.name} := {' + '.join(parts)}"


class Guard:
    """One affine comparison ``constant + sum coeff*var  REL  0``."""

    __slots__ = ("constant", "coefficients", "relation")

    def __init__(self, constant, coefficients, relation):
        self.constant = constant
        self.coefficients = dict(coefficients)
        self.relation = relation  # ">=", ">", "<=", "<", "="

    def holds(self, state):
        value = self.constant + sum(
            c * state[v] for v, c in self.coefficients.items()
        )
        return {
            ">=": value >= 0,
            ">": value > 0,
            "<=": value <= 0,
            "<": value < 0,
            "=": value == 0,
        }[self.relation]

    def __repr__(self):
        body = " + ".join(
            [str(self.constant)]
            + [f"{c}*{v}" for v, c in sorted(self.coefficients.items())]
        )
        return f"({body} {self.relation} 0)"


class Loop:
    """``while (guards) { updates }`` with simultaneous updates."""

    __slots__ = ("guards", "updates")

    def __init__(self, guards, updates):
        self.guards = list(guards)
        self.updates = list(updates)

    def guard_holds(self, state):
        return all(guard.holds(state) for guard in self.guards)

    def step(self, state):
        new_state = dict(state)
        for update in self.updates:
            new_state[update.name] = update.evaluate(state)
        return new_state


class Program:
    """An initialized single-loop program.

    Attributes:
        name: identifier.
        variables: ordered variable names.
        init: name -> initial integer value (may be None = unconstrained).
        loop: the :class:`Loop`.
    """

    __slots__ = ("name", "variables", "init", "loop")

    def __init__(self, name, variables, init, loop):
        self.name = name
        self.variables = list(variables)
        self.init = dict(init)
        self.loop = loop

    def __repr__(self):
        return f"Program({self.name}, vars={self.variables})"


# ---------------------------------------------------------------------------
# Parser for the concrete syntax
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"\s*(?:(?P<num>-?\d+)|(?P<name>[A-Za-z_]\w*)|(?P<op>:=|>=|<=|==|[><=+\-*;(){}]|and))"
)


def _tokenize(text):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if not match:
            if text[position:].strip():
                raise ParseError(f"bad program syntax near {text[position:position+20]!r}")
            break
        position = match.end()
        tokens.append(match.group("num") or match.group("name") or match.group("op"))
    return tokens


class _ProgramParser:
    def __init__(self, tokens, name):
        self.tokens = tokens
        self.position = 0
        self.name = name

    def _peek(self):
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def _take(self, expected=None):
        token = self._peek()
        if token is None or (expected is not None and token != expected):
            raise ParseError(f"expected {expected!r}, got {token!r} in program {self.name}")
        self.position += 1
        return token

    def _affine(self):
        """Parse ``term (+|- term)*`` into (constant, coefficients)."""
        constant = 0
        coefficients = {}
        sign = 1
        while True:
            token = self._peek()
            if token == "-":
                self._take()
                sign = -sign
                continue
            if token == "+":
                self._take()
                continue
            if token is None:
                break
            if re.fullmatch(r"-?\d+", token):
                self._take()
                value = sign * int(token)
                sign = 1
                if self._peek() == "*":
                    self._take("*")
                    var = self._take()
                    coefficients[var] = coefficients.get(var, 0) + value
                else:
                    constant += value
            elif re.fullmatch(r"[A-Za-z_]\w*", token) and token != "and":
                self._take()
                coefficients[token] = coefficients.get(token, 0) + sign
                sign = 1
            else:
                break
            if self._peek() not in ("+", "-"):
                break
        return constant, coefficients

    def _assign(self):
        name = self._take()
        self._take(":=")
        constant, coefficients = self._affine()
        self._take(";")
        return Assign(name, constant, coefficients)

    def _guard(self):
        left_constant, left_coefficients = self._affine()
        relation = self._take()
        if relation == "==":
            relation = "="
        if relation not in (">=", ">", "<=", "<", "="):
            raise ParseError(f"bad relation {relation!r} in program {self.name}")
        right_constant, right_coefficients = self._affine()
        constant = left_constant - right_constant
        coefficients = dict(left_coefficients)
        for var, coefficient in right_coefficients.items():
            coefficients[var] = coefficients.get(var, 0) - coefficient
        coefficients = {v: c for v, c in coefficients.items() if c}
        return Guard(constant, coefficients, relation)

    def parse(self):
        init_assigns = []
        while self._peek() is not None and self._peek() != "while":
            init_assigns.append(self._assign())
        self._take("while")
        self._take("(")
        guards = [self._guard()]
        while self._peek() == "and":
            self._take("and")
            guards.append(self._guard())
        self._take(")")
        self._take("{")
        updates = []
        while self._peek() != "}":
            updates.append(self._assign())
        self._take("}")

        variables = []
        for assign in init_assigns + updates:
            if assign.name not in variables:
                variables.append(assign.name)
            for var in assign.coefficients:
                if var not in variables:
                    variables.append(var)
        for guard in guards:
            for var in guard.coefficients:
                if var not in variables:
                    variables.append(var)
        init = {}
        for assign in init_assigns:
            if assign.coefficients:
                raise ParseError(
                    f"initializers must be constants in program {self.name}"
                )
            init[assign.name] = assign.constant
        loop = Loop(guards, updates)
        return Program(self.name, variables, init, loop)


def parse_program(text, name="program"):
    """Parse the concrete while-language syntax into a :class:`Program`."""
    return _ProgramParser(_tokenize(text), name).parse()
