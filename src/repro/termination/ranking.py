"""Linear ranking-function synthesis via Farkas' lemma.

For a single affine loop (guard polyhedron + simultaneous affine update)
we search for a linear ranking function ``r(x) = f . x + f0`` with the
two classic Podelski--Rybalchenko conditions on every transition
``(x, x')`` of the loop:

- boundedness: ``r(x) >= 0``;
- decrease:    ``r(x) - r(x') >= 1``.

Both are entailments over the transition polyhedron ``A z <= b`` with
``z = (x, x')``, turned into existential constraints on the template by
Farkas' lemma: ``c z <= d`` holds on the polyhedron iff there is
``lambda >= 0`` with ``lambda A = c`` and ``lambda b <= d``. The unknowns
(the template ``f`` and the multipliers) become an SMT constraint in
QF_LIA, exactly the constraint stream Ultimate Automizer sends to its
solver.

Like Ultimate, the generator issues *iterative candidate queries* with
increasingly generous template-coefficient bounds; early tight bounds are
usually unsatisfiable, which is what makes the client workload
pessimistic for theory arbitrage (Section 5.4).
"""

from repro.smtlib import build
from repro.smtlib.script import Script


def _transition_rows(program):
    """The transition polyhedron ``A z <= b`` with z = (x..., x'...).

    Returns (rows, order) where each row is (coefficients over z, bound)
    and order is the variable name list defining z's layout.
    """
    variables = program.variables
    index = {name: i for i, name in enumerate(variables)}
    width = 2 * len(variables)
    rows = []

    def blank():
        return [0] * width

    for guard in program.loop.guards:
        # constant + sum c*x REL 0  ->  rows in <= form.
        if guard.relation in (">=", ">"):
            row = blank()
            for name, coefficient in guard.coefficients.items():
                row[index[name]] = -coefficient
            bound = guard.constant - (1 if guard.relation == ">" else 0)
            rows.append((row, bound))
        elif guard.relation in ("<=", "<"):
            row = blank()
            for name, coefficient in guard.coefficients.items():
                row[index[name]] = coefficient
            bound = -guard.constant - (1 if guard.relation == "<" else 0)
            rows.append((row, bound))
        else:  # equality: two inequalities
            for sign in (1, -1):
                row = blank()
                for name, coefficient in guard.coefficients.items():
                    row[index[name]] = sign * coefficient
                rows.append((row, sign * -guard.constant))

    updated = {assign.name: assign for assign in program.loop.updates}
    for name in variables:
        assign = updated.get(name)
        primed = index[name] + len(variables)
        if assign is None:
            # Unchanged variable: x' = x.
            for sign in (1, -1):
                row = blank()
                row[primed] = sign
                row[index[name]] = -sign
                rows.append((row, 0))
        else:
            # x' = const + sum coeff * x  as two inequalities.
            for sign in (1, -1):
                row = blank()
                row[primed] = sign
                for var, coefficient in assign.coefficients.items():
                    row[index[var]] = -sign * coefficient
                rows.append((row, sign * assign.constant))
    return rows, variables


class RankingTemplate:
    """The Farkas constraint split into a candidate-independent core and
    per-candidate layers.

    The multipliers' sign constraints, both column systems, and the
    boundedness entailment do not depend on ``(coefficient_bound,
    decrease)``; only the decrease target and the coefficient box do.
    Splitting them lets the session-mode client assert the core once and
    push/pop candidate layers, paying analysis, translation, and
    bit-blasting for the bulk of the constraint a single time across the
    whole iterative query stream.

    ``script(bound, decrease)`` concatenates core + layer in exactly the
    order :func:`ranking_constraints` has always produced, so both modes
    solve literally identical scripts.
    """

    def __init__(self, program):
        rows, variables = _transition_rows(program)
        num_vars = len(variables)
        width = 2 * num_vars

        self._template = {name: build.IntVar(f"f_{name}") for name in variables}
        self._template_const = build.IntVar("f_0")
        self._lambda_bound = [build.IntVar(f"lb_{i}") for i in range(len(rows))]
        self._lambda_decrease = [
            build.IntVar(f"ld_{i}") for i in range(len(rows))
        ]

        assertions = []
        for multipliers in (self._lambda_bound, self._lambda_decrease):
            for variable in multipliers:
                assertions.append(build.Ge(variable, build.IntConst(0)))

        def _sum(terms):
            terms = [t for t in terms if t is not None]
            if not terms:
                return build.IntConst(0)
            if len(terms) == 1:
                return terms[0]
            return build.Add(*terms)

        def _scaled(variable, coefficient):
            if coefficient == 0:
                return None
            if coefficient == 1:
                return variable
            return build.Mul(build.IntConst(coefficient), variable)

        # Boundedness: lambda_b A = c1 with c1 = (-f, 0);  lambda_b b <= f0.
        for column in range(width):
            lhs = _sum(
                _scaled(self._lambda_bound[i], row[column])
                for i, (row, _) in enumerate(rows)
            )
            if column < num_vars:
                target = build.Neg(self._template[variables[column]])
            else:
                target = build.IntConst(0)
            assertions.append(build.Eq(lhs, target))
        bound_rhs = _sum(
            _scaled(self._lambda_bound[i], bound)
            for i, (_, bound) in enumerate(rows)
        )
        assertions.append(build.Le(bound_rhs, self._template_const))

        # Decrease columns: lambda_d A = c2 with c2 = (-f, +f). The
        # right-hand side (lambda_d b <= -decrease) is the candidate
        # layer's job.
        for column in range(width):
            lhs = _sum(
                _scaled(self._lambda_decrease[i], row[column])
                for i, (row, _) in enumerate(rows)
            )
            name = variables[column % num_vars]
            target = (
                build.Neg(self._template[name])
                if column < num_vars
                else self._template[name]
            )
            assertions.append(build.Eq(lhs, target))
        self._decrease_rhs = _sum(
            _scaled(self._lambda_decrease[i], bound)
            for i, (_, bound) in enumerate(rows)
        )
        self.base_assertions = assertions

    def candidate_layer(self, coefficient_bound=None, decrease=1):
        """The retractable assertions for one candidate query."""
        assertions = [
            build.Le(self._decrease_rhs, build.IntConst(-decrease))
        ]
        # A trivial all-zero template satisfies nothing (decrease needs
        # -1), but bounded-coefficient candidate queries mimic Ultimate's
        # search.
        if coefficient_bound is not None:
            for variable in list(self._template.values()) + [self._template_const]:
                assertions.append(
                    build.Ge(variable, build.IntConst(-coefficient_bound))
                )
                assertions.append(
                    build.Le(variable, build.IntConst(coefficient_bound))
                )
            for variable in self._lambda_bound + self._lambda_decrease:
                assertions.append(
                    build.Le(variable, build.IntConst(coefficient_bound))
                )
        return assertions

    def script(self, coefficient_bound=None, decrease=1):
        """The full candidate query as one flat script."""
        return Script.from_assertions(
            self.base_assertions + self.candidate_layer(coefficient_bound, decrease),
            logic="QF_LIA",
        )


def ranking_constraints(program, coefficient_bound=None, decrease=1):
    """Build the Farkas constraint for a linear ranking function.

    Args:
        program: the loop program.
        coefficient_bound: when given, additionally require every template
            coefficient to lie in ``[-bound, bound]`` -- the iterative
            candidate-query pattern.
        decrease: required per-iteration decrease of the ranking function.
            Candidate queries with aggressive decrease targets usually
            fail (unsat), reproducing the mostly-unsat client stream.

    Returns:
        A QF_LIA :class:`Script`, satisfiable iff a (bounded) linear
        ranking function with the requested decrease exists.
    """
    return RankingTemplate(program).script(coefficient_bound, decrease)


def extract_ranking_function(program, model):
    """Read the synthesized ranking function out of a model.

    Returns:
        (coefficients dict, constant) for ``r(x) = f . x + f0``.
    """
    coefficients = {
        name: model.get(f"f_{name}", 0) for name in program.variables
    }
    return coefficients, model.get("f_0", 0)
