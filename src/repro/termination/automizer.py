"""The Automizer-like driver: programs -> constraint stream -> verdicts.

For each program the driver issues the query sequence a real termination
prover would:

1. a tightly bounded ranking-template candidate (QF_LIA, usually unsat);
2. a generously bounded ranking template (QF_LIA, sat iff a linear
   ranking function exists);
3. a geometric nontermination argument (QF_NIA), tried when ranking
   synthesis failed.

Every query can be solved by the baseline solver directly or through
STAUB with portfolio semantics -- RQ3 measures the difference over the
whole constraint stream.
"""

from repro.core.pipeline import Staub
from repro.core.session import ArbitrageSession
from repro.errors import TransformError
from repro.solver import solve_script
from repro.termination.nontermination import (
    NonterminationTemplate,
    nontermination_constraints,
)
from repro.termination.ranking import RankingTemplate, ranking_constraints

TERMINATING = "terminating"
NONTERMINATING = "nonterminating"
UNKNOWN = "unknown"


class QueryRecord:
    """One solver query issued during an analysis.

    Attributes:
        kind: "ranking-tight" / "ranking-wide" / "nontermination".
        logic: the query's logic.
        baseline_status / baseline_work: direct solve of the query.
        staub_case / staub_work: STAUB run of the same query.
        final_work: portfolio cost (min when STAUB verified, else baseline).
    """

    __slots__ = (
        "kind",
        "logic",
        "baseline_status",
        "baseline_work",
        "staub_case",
        "staub_work",
        "final_work",
        "verified",
    )

    def __init__(self, kind, logic, baseline_status, baseline_work, staub_case, staub_work, verified):
        self.kind = kind
        self.logic = logic
        self.baseline_status = baseline_status
        self.baseline_work = baseline_work
        self.staub_case = staub_case
        self.staub_work = staub_work
        self.verified = verified
        self.final_work = min(baseline_work, staub_work) if verified else baseline_work


class AnalysisResult:
    """Verdict plus the full query log for one program."""

    __slots__ = ("program", "verdict", "queries")

    def __init__(self, program, verdict, queries):
        self.program = program
        self.verdict = verdict
        self.queries = queries

    @property
    def baseline_work(self):
        return sum(query.baseline_work for query in self.queries)

    @property
    def final_work(self):
        return sum(query.final_work for query in self.queries)

    def __repr__(self):
        return f"AnalysisResult({self.program.name}, {self.verdict})"


class Automizer:
    """Termination analysis over the while-language.

    Args:
        profile: baseline solver profile name.
        budget: unified work budget per query (the virtual timeout).
        use_staub: run each query through STAUB as well and use portfolio
            semantics (the paper's RQ3 configuration).
        use_sessions: drive the STAUB lane through scope-aware
            :class:`~repro.core.session.ArbitrageSession` instances --
            one per constraint family per program -- so the iterative
            candidate stream pays inference, translation, and
            bit-blasting for the shared Farkas core once instead of per
            query. Off by default: the classic per-query pipeline is the
            paper's RQ3 configuration and the benchmark baseline.
    """

    def __init__(self, profile="zorro", budget=2_000_000, use_staub=True,
                 use_sessions=False):
        self.profile = profile
        self.budget = budget
        self.use_staub = use_staub
        self.use_sessions = use_sessions
        self._staub = Staub()

    def _solve_query(self, kind, script, session=None):
        baseline = solve_script(script, budget=self.budget, profile=self.profile)
        baseline_work = min(baseline.work, self.budget)
        if baseline.is_unknown:
            baseline_work = self.budget
        staub_case = None
        staub_work = baseline_work
        verified = False
        answer = baseline.status
        if self.use_staub:
            if session is not None:
                report = session.check(budget=self.budget)
            else:
                report = self._staub.run(script, budget=self.budget)
            staub_case = report.case
            staub_work = min(report.total_work, self.budget)
            verified = report.usable
            if verified and baseline.is_unknown:
                answer = "sat"  # tractability improvement inside the client
        record = QueryRecord(
            kind,
            script.logic,
            baseline.status,
            baseline_work,
            staub_case,
            staub_work,
            verified,
        )
        return answer, record

    def analyze(self, program):
        """Run the full candidate-query sequence on one program.

        The sequence mirrors a real prover's search: aggressive candidate
        templates first (usually unsat -- the pessimistic bulk of the
        stream), the generous template next, and nontermination arguments
        when ranking synthesis fails.
        """
        if self.use_sessions and self.use_staub:
            return self._analyze_with_sessions(program)
        queries = []

        # Candidate 1: fast-decrease, tiny-coefficient template. Fails on
        # most loops; this is the "failed lemma" traffic.
        fast = ranking_constraints(program, coefficient_bound=1, decrease=8)
        answer, record = self._solve_query("ranking-fast", fast)
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, TERMINATING, queries)

        # Candidate 2: unit-decrease, tiny coefficients.
        tight = ranking_constraints(program, coefficient_bound=1, decrease=1)
        answer, record = self._solve_query("ranking-tight", tight)
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, TERMINATING, queries)

        # Candidate 3: the generous template.
        wide = ranking_constraints(program, coefficient_bound=16, decrease=1)
        answer, record = self._solve_query("ranking-wide", wide)
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, TERMINATING, queries)

        # Nontermination: compact argument first, then unbounded.
        compact = nontermination_constraints(program, magnitude_bound=4)
        answer, record = self._solve_query("nontermination-compact", compact)
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, NONTERMINATING, queries)

        nonterm = nontermination_constraints(program, magnitude_bound=None)
        answer, record = self._solve_query("nontermination", nonterm)
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, NONTERMINATING, queries)

        return AnalysisResult(program, UNKNOWN, queries)

    #: The ranking candidate ladder: (kind, coefficient_bound, decrease).
    RANKING_CANDIDATES = (
        ("ranking-fast", 1, 8),
        ("ranking-tight", 1, 1),
        ("ranking-wide", 16, 1),
    )

    def _analyze_with_sessions(self, program):
        """The same candidate-query sequence, with the STAUB lane scoped.

        The baseline lane still solves each *flat* query script, so
        baseline verdicts (and therefore program verdicts, whenever the
        baseline is decisive) are byte-identical to the classic mode.
        The STAUB lane asserts each constraint family's shared core once
        into an :class:`ArbitrageSession` and push/pops the per-candidate
        layers, so the stream pays core translation and bit-blasting a
        single time.
        """
        queries = []

        template = RankingTemplate(program)
        ranking = ArbitrageSession(budget=self.budget)
        for term in template.base_assertions:
            ranking.assert_term(term)
        for kind, bound, decrease in self.RANKING_CANDIDATES:
            ranking.push()
            for term in template.candidate_layer(bound, decrease):
                ranking.assert_term(term)
            answer, record = self._solve_query(
                kind, template.script(bound, decrease), session=ranking
            )
            ranking.pop()
            queries.append(record)
            if answer == "sat":
                return AnalysisResult(program, TERMINATING, queries)

        nonterm_template = NonterminationTemplate(program)
        nonterm = ArbitrageSession(budget=self.budget)
        for term in nonterm_template.base_assertions:
            nonterm.assert_term(term)
        nonterm.push()
        for term in nonterm_template.magnitude_layer(4):
            nonterm.assert_term(term)
        answer, record = self._solve_query(
            "nontermination-compact",
            nonterm_template.script(magnitude_bound=4),
            session=nonterm,
        )
        nonterm.pop()
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, NONTERMINATING, queries)

        # The unbounded retry re-encodes nothing: popping the magnitude
        # box just retracted its assumption slice.
        answer, record = self._solve_query(
            "nontermination", nonterm_template.script(), session=nonterm
        )
        queries.append(record)
        if answer == "sat":
            return AnalysisResult(program, NONTERMINATING, queries)

        return AnalysisResult(program, UNKNOWN, queries)

    def analyze_suite(self, programs):
        """Analyze a list of programs; returns the result list."""
        return [self.analyze(program) for program in programs]
