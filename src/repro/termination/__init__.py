"""Termination-proving client analysis (the paper's RQ3 substrate).

A reproduction of the Ultimate-Automizer-shaped workload: a small integer
while-language (:mod:`repro.termination.lang`), linear ranking-function
synthesis via Farkas' lemma (:mod:`repro.termination.ranking`) emitting
QF_LIA constraints, a geometric nontermination-argument generator
emitting QF_NIA constraints (:mod:`repro.termination.nontermination`),
and a driver (:mod:`repro.termination.automizer`) that feeds every
generated constraint through the solver -- optionally via STAUB -- and
aggregates verdicts.

The generated constraint stream is *pessimistic* for theory arbitrage in
exactly the paper's sense: most queries are unsatisfiable (failed
candidate arguments), so most arbitrage runs revert; the overall speedup
comes from the satisfiable nonlinear tail.
"""

from repro.termination.lang import Assign, Loop, Program, parse_program
from repro.termination.interp import run_program
from repro.termination.ranking import ranking_constraints
from repro.termination.nontermination import nontermination_constraints
from repro.termination.automizer import Automizer, AnalysisResult
from repro.termination.programs import termination_benchmark_suite

__all__ = [
    "Assign",
    "Loop",
    "Program",
    "parse_program",
    "run_program",
    "ranking_constraints",
    "nontermination_constraints",
    "Automizer",
    "AnalysisResult",
    "termination_benchmark_suite",
]
