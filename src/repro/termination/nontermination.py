"""Geometric nontermination arguments (QF_NIA constraint generator).

A simplified form of Leike & Heizmann's geometric nontermination
arguments: the loop does not terminate if there is a start state ``x``, a
direction ``y``, and a ratio ``lam >= 1`` such that

- the guard holds at ``x`` and at ``x + y``;
- one loop step from ``x`` lands on ``x + y``;
- one loop step from ``x + y`` lands on ``x + y + lam*y``.

The products ``lam * y_i`` make the constraint genuinely nonlinear --
this is the QF_NIA tail of the Ultimate-style workload, and the place
where theory arbitrage has something to win on satisfiable instances
(nonterminating programs).
"""

from repro.smtlib import build
from repro.smtlib.script import Script


def _affine_term(constant, coefficients, variables):
    terms = []
    if constant:
        terms.append(build.IntConst(constant))
    for name, coefficient in coefficients.items():
        if coefficient == 0:
            continue
        variable = variables[name]
        if coefficient == 1:
            terms.append(variable)
        else:
            terms.append(build.Mul(build.IntConst(coefficient), variable))
    if not terms:
        return build.IntConst(0)
    if len(terms) == 1:
        return terms[0]
    return build.Add(*terms)


def _guard_assertions(program, state_terms):
    assertions = []
    for guard in program.loop.guards:
        value = [build.IntConst(guard.constant)]
        for name, coefficient in guard.coefficients.items():
            term = state_terms[name]
            if coefficient == 1:
                value.append(term)
            else:
                value.append(build.Mul(build.IntConst(coefficient), term))
        total = value[0] if len(value) == 1 else build.Add(*value)
        zero = build.IntConst(0)
        builder = {
            ">=": build.Ge,
            ">": build.Gt,
            "<=": build.Le,
            "<": build.Lt,
            "=": build.Eq,
        }[guard.relation]
        assertions.append(builder(total, zero))
    return assertions


def _step_terms(program, state_terms):
    """Symbolic next-state terms for each variable."""
    updated = {assign.name: assign for assign in program.loop.updates}
    next_terms = {}
    for name in program.variables:
        assign = updated.get(name)
        if assign is None:
            next_terms[name] = state_terms[name]
        else:
            terms = []
            if assign.constant:
                terms.append(build.IntConst(assign.constant))
            for var, coefficient in assign.coefficients.items():
                base = state_terms[var]
                if coefficient == 1:
                    terms.append(base)
                else:
                    terms.append(build.Mul(build.IntConst(coefficient), base))
            if not terms:
                next_terms[name] = build.IntConst(0)
            elif len(terms) == 1:
                next_terms[name] = terms[0]
            else:
                next_terms[name] = build.Add(*terms)
    return next_terms


class NonterminationTemplate:
    """The geometric argument split into its fixed core and the optional
    retractable layers (magnitude box, pinned initial state).

    The session-mode client asserts the core once, then pushes the
    compact-argument magnitude layer, checks, pops it, and re-checks
    unbounded -- the second check re-encodes *nothing*.
    ``script(bound, pin)`` concatenates the pieces in exactly the order
    :func:`nontermination_constraints` has always produced.
    """

    def __init__(self, program):
        self._program = program
        x = {name: build.IntVar(f"x_{name}") for name in program.variables}
        y = {name: build.IntVar(f"y_{name}") for name in program.variables}
        lam = build.IntVar("lam")
        self._x = x
        self._y = y
        self._lam = lam
        assertions = []

        # Guard at x and at x + y.
        assertions += _guard_assertions(program, x)
        x_plus_y = {
            name: build.Add(x[name], y[name]) for name in program.variables
        }
        assertions += _guard_assertions(program, x_plus_y)

        # step(x) = x + y.
        next_from_x = _step_terms(program, x)
        for name in program.variables:
            assertions.append(build.Eq(next_from_x[name], x_plus_y[name]))

        # step(x + y) = x + y + lam * y  (the nonlinear part).
        next_from_xy = _step_terms(program, x_plus_y)
        for name in program.variables:
            target = build.Add(x[name], y[name], build.Mul(lam, y[name]))
            assertions.append(build.Eq(next_from_xy[name], target))

        # Recession condition: the direction y must not leave the guard
        # polyhedron -- for a guard ``c . v REL 0`` the directional
        # derivative ``c . y`` must keep the relation satisfiable
        # forever. Together with lam >= 1 this makes the argument sound:
        # states follow s_{k+1} = s_k + lam^k * y (y is a lam-eigenvector
        # of the update), and guard(s_k) holds for every k by induction.
        for guard in program.loop.guards:
            derivative = [
                build.Mul(build.IntConst(c), y[name]) if c != 1 else y[name]
                for name, c in guard.coefficients.items()
                if c != 0
            ]
            if not derivative:
                continue
            total = (
                derivative[0] if len(derivative) == 1 else build.Add(*derivative)
            )
            zero = build.IntConst(0)
            if guard.relation in (">=", ">"):
                assertions.append(build.Ge(total, zero))
            elif guard.relation in ("<=", "<"):
                assertions.append(build.Le(total, zero))
            else:
                assertions.append(build.Eq(total, zero))

        assertions.append(build.Ge(lam, build.IntConst(1)))
        # A degenerate all-zero direction would only certify a fixed
        # point; accept it too (it is a genuine nontermination witness),
        # but then the guard must hold at the fixed point, which the
        # constraints above already ensure.
        self.base_assertions = assertions

    def magnitude_layer(self, magnitude_bound):
        """``|x_i|, |y_i|, lam <= B``: the compact-argument box."""
        assertions = []
        for variable in list(self._x.values()) + list(self._y.values()):
            assertions.append(
                build.Ge(variable, build.IntConst(-magnitude_bound))
            )
            assertions.append(
                build.Le(variable, build.IntConst(magnitude_bound))
            )
        assertions.append(build.Le(self._lam, build.IntConst(magnitude_bound)))
        return assertions

    def pin_layer(self):
        """Start the argument at the program's initial state."""
        return [
            build.Eq(self._x[name], build.IntConst(value))
            for name, value in self._program.init.items()
        ]

    def script(self, magnitude_bound=None, pin_initial=False):
        """The full query as one flat script."""
        assertions = list(self.base_assertions)
        if magnitude_bound is not None:
            assertions += self.magnitude_layer(magnitude_bound)
        if pin_initial:
            assertions += self.pin_layer()
        return Script.from_assertions(assertions, logic="QF_NIA")


def nontermination_constraints(program, magnitude_bound=None, pin_initial=False):
    """Build the geometric nontermination constraint for a program.

    Args:
        program: the loop program.
        magnitude_bound: optional bound ``|x_i|, |y_i| <= B`` mirroring
            Ultimate's finite search for compact arguments.
        pin_initial: when True, the argument must start at the program's
            initial state; by default it may start at any guard-satisfying
            state (the lasso-loop search of a real prover, where the stem
            is handled separately).

    Returns:
        A QF_NIA :class:`Script`, satisfiable when a geometric
        nontermination argument (of this restricted shape) exists.
    """
    return NonterminationTemplate(program).script(magnitude_bound, pin_initial)
