"""The 97-program termination benchmark suite (SV-COMP analogue).

Families mirror the SV-COMP termination categories the paper's RQ3 uses
(restricted to the array-free programs STAUB supports, which is why the
paper's count drops from 931 to 97):

- ``countdown``: terminating counters with affine decrements;
- ``coupled``: two variables with coupled affine updates (terminating);
- ``race``: two counters racing toward a crossing guard;
- ``diverge-linear``: nonterminating drift (x grows under an upper guard
  that never binds);
- ``diverge-geometric``: nonterminating geometric growth (x' = k*x),
  whose nontermination argument is genuinely nonlinear;
- ``fixed-point``: loops that stall on a fixed point.

Each program is emitted as concrete while-language source and parsed, so
the parser is on the critical path (as Ultimate's front end is).
"""

from repro.benchgen.base import make_rng
from repro.termination.lang import parse_program


def _countdown(rng, index):
    start = rng.randint(5, 60)
    step = rng.randint(1, 4)
    text = f"x := {start}; while (x > 0) {{ x := x - {step}; }}"
    return parse_program(text, f"countdown-{index:02d}"), "terminating"


def _coupled(rng, index):
    start_x = rng.randint(10, 50)
    start_y = rng.randint(0, 10)
    text = (
        f"x := {start_x}; y := {start_y}; "
        f"while (x > 0) {{ x := x + y - 2; y := y - 1; }}"
    )
    return parse_program(text, f"coupled-{index:02d}"), None


def _race(rng, index):
    start_x = rng.randint(0, 10)
    start_y = rng.randint(30, 80)
    up = rng.randint(2, 5)
    down = rng.randint(1, 3)
    text = (
        f"x := {start_x}; y := {start_y}; "
        f"while (x < y) {{ x := x + {up}; y := y - {down}; }}"
    )
    return parse_program(text, f"race-{index:02d}"), "terminating"


def _diverge_linear(rng, index):
    start = rng.randint(1, 20)
    step = rng.randint(1, 5)
    text = f"x := {start}; while (x > 0) {{ x := x + {step}; }}"
    return parse_program(text, f"diverge-linear-{index:02d}"), "nonterminating"


def _diverge_geometric(rng, index):
    start = rng.randint(1, 6)
    factor = rng.randint(2, 4)
    text = f"x := {start}; while (x > 0) {{ x := {factor} * x; }}"
    return parse_program(text, f"diverge-geometric-{index:02d}"), "nonterminating"


def _fixed_point(rng, index):
    value = rng.randint(1, 30)
    text = f"x := {value}; while (x > 0) {{ x := x; }}"
    return parse_program(text, f"fixed-point-{index:02d}"), "nonterminating"


def _spiral(rng, index):
    """Nonterminating coupled growth with moderate-magnitude witnesses.

    Two variables with the update ``x' = 2x - y, y' = 2y - c``: the
    geometric nontermination argument exists but involves a genuinely
    coupled nonlinear search, slow for the unbounded baseline while the
    bounded transformation reaches the witness in ~12 bits -- these are
    the client's verified-speedup cases (the paper's 8 of 97).
    """
    if index % 4 == 3:
        # The hardest instances: the unbounded baseline's search exceeds
        # the timeout entirely, so the verified bounded answer is a
        # tractability improvement inside the client.
        threshold = rng.randint(880, 1000)
    else:
        threshold = rng.randint(420, 820)
    anchor = threshold + rng.randint(200, 480)
    start = anchor + rng.randint(50, 300)
    text = (
        f"x := {start}; y := {anchor}; "
        f"while (x > {threshold}) {{ x := 2 * x - 1 * y; y := 2 * y - {anchor}; }}"
    )
    return parse_program(text, f"spiral-{index:02d}"), "nonterminating"


_FAMILIES = (
    (_countdown, 22),
    (_coupled, 14),
    (_race, 21),
    (_diverge_linear, 12),
    (_diverge_geometric, 12),
    (_fixed_point, 6),
    (_spiral, 10),
)


def termination_benchmark_suite(seed=2024, count=97):
    """Generate the program suite.

    Returns:
        A list of ``(program, expected_verdict)`` pairs; expected is
        "terminating", "nonterminating", or None when the generator does
        not assert ground truth.
    """
    rng = make_rng(seed, "termination")
    programs = []
    for builder, family_count in _FAMILIES:
        for index in range(family_count):
            programs.append(builder(rng, index))
    # Interleave families deterministically so that prefixes of the suite
    # (used by quick runs) keep the family mix, then trim/extend.
    rng.shuffle(programs)
    while len(programs) > count:
        programs.pop()
    extra = 0
    while len(programs) < count:
        programs.append(_countdown(rng, 100 + extra))
        extra += 1
    return programs
