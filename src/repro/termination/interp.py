"""Concrete interpreter for the while-language.

Used to *observe* termination empirically (ground truth for tests and for
labelling generated programs): run the loop up to a step bound and report
whether it exited.
"""

TERMINATED = "terminated"
RUNNING = "running"  # still looping when the step bound was hit


class RunOutcome:
    """Result of executing a program.

    Attributes:
        status: :data:`TERMINATED` or :data:`RUNNING`.
        steps: loop iterations executed.
        final_state: variable values at the end of the run.
    """

    __slots__ = ("status", "steps", "final_state")

    def __init__(self, status, steps, final_state):
        self.status = status
        self.steps = steps
        self.final_state = final_state

    def __repr__(self):
        return f"RunOutcome({self.status}, steps={self.steps})"


def run_program(program, max_steps=10_000, initial_overrides=None):
    """Execute a program concretely.

    Args:
        program: the :class:`~repro.termination.lang.Program`.
        max_steps: loop-iteration budget.
        initial_overrides: values for variables without initializers.

    Returns:
        A :class:`RunOutcome`.
    """
    state = {name: 0 for name in program.variables}
    state.update(program.init)
    state.update(initial_overrides or {})
    steps = 0
    while program.loop.guard_holds(state):
        if steps >= max_steps:
            return RunOutcome(RUNNING, steps, state)
        state = program.loop.step(state)
        steps += 1
    return RunOutcome(TERMINATED, steps, state)
