"""The resource governor: one envelope every solver layer checks.

Before this module each layer enforced its own ad-hoc ``budget`` int.
Those numeric budgets still exist (their raw-unit conversions are the
virtual clock and must stay deterministic), but they are now *views* of
a single :class:`ResourceBudget` installed for the duration of a solve:

- the **work ceiling** is the unified budget the facade translates into
  per-engine raw units (``repro.solver.costs``);
- the **wall-clock deadline** and **cooperative cancellation** are
  checked directly by every layer's hot loop via
  :meth:`ResourceBudget.interrupted`;
- **recursion and memory ceilings** bound branch-and-bound depth and
  open-node counts.

Exhaustion never escapes the facade as an exception: the layer that
notices calls ``interrupted(layer)`` (or ``note_give_up``), which
records the *first* layer that gave up plus the reason, bumps the
``guard.gave_up`` telemetry counter once, and the layer returns a
structured ``unknown`` upward.

The default active governor is :data:`NULL_GOVERNOR`, which is never
exhausted and costs one attribute lookup plus one method call per check,
so governed code paths stay byte-identical to the historical behaviour
when no limits are set.
"""

import time
from contextlib import contextmanager

from repro import telemetry

__all__ = [
    "Deadline",
    "NullGovernor",
    "NULL_GOVERNOR",
    "ResourceBudget",
    "activate",
    "active",
]


class Deadline:
    """A wall-clock deadline on ``time.monotonic()``.

    Deadlines are the one deliberately non-deterministic limit: they only
    exist when a caller opts in, so default runs stay reproducible.
    """

    __slots__ = ("at",)

    def __init__(self, seconds):
        self.at = time.monotonic() + float(seconds)

    @property
    def expired(self):
        return time.monotonic() >= self.at

    def remaining(self):
        """Seconds left; never negative."""
        return max(0.0, self.at - time.monotonic())

    def __repr__(self):
        return f"Deadline(remaining={self.remaining():.3f}s)"


class NullGovernor:
    """The no-limit governor: every check is a cheap constant ``False``."""

    __slots__ = ()

    work_limit = None
    deadline = None
    max_depth = None
    max_memory = None
    spent = 0
    reason = None
    gave_up_layer = None
    cancelled = False

    def interrupted(self, layer=None):
        return False

    def charge(self, units, layer=None):
        return True

    def memory_ok(self, amount, layer=None):
        return True

    def note_give_up(self, layer, reason):
        pass

    def cancel(self):
        pass

    def remaining_work(self):
        return None

    def __repr__(self):
        return "NullGovernor()"


#: The process-default governor; never exhausted.
NULL_GOVERNOR = NullGovernor()


class ResourceBudget:
    """A unified resource envelope for one solve (or one race).

    Args:
        work: unified work ceiling (None = unlimited). Enforced through
            the per-engine raw budgets the facade derives from it.
        deadline: wall-clock limit -- seconds (float/int) or a
            :class:`Deadline`. None keeps the run deterministic.
        max_depth: branch-and-bound depth ceiling (None = engine default).
        max_memory: ceiling on open search nodes / learned structures,
            checked via :meth:`memory_ok`.
        parent: an enclosing governor (e.g. a portfolio race deadline);
            its interruption propagates into this one.
    """

    __slots__ = (
        "work_limit",
        "deadline",
        "max_depth",
        "max_memory",
        "parent",
        "spent",
        "cancelled",
        "reason",
        "gave_up_layer",
    )

    def __init__(self, work=None, deadline=None, max_depth=None, max_memory=None, parent=None):
        self.work_limit = work
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline(deadline)
        self.deadline = deadline
        self.max_depth = max_depth
        self.max_memory = max_memory
        self.parent = parent
        self.spent = 0
        self.cancelled = False
        self.reason = None
        self.gave_up_layer = None

    # -- checks ------------------------------------------------------------

    def _exhausted_reason(self):
        if self.cancelled:
            return "cancelled"
        if self.deadline is not None and self.deadline.expired:
            return "deadline"
        if self.work_limit is not None and self.spent >= self.work_limit:
            return "work"
        return None

    def interrupted(self, layer=None):
        """True when the layer must stop now; records the first give-up."""
        reason = self._exhausted_reason()
        if reason is None:
            if self.parent is not None and self.parent.interrupted(layer):
                reason = "parent"
            else:
                return False
        self.note_give_up(layer, reason)
        return True

    def charge(self, units, layer=None):
        """Account work against the envelope; False once exhausted."""
        self.spent += units
        return not self.interrupted(layer)

    def memory_ok(self, amount, layer=None):
        """Check a current usage gauge against the memory ceiling."""
        if self.max_memory is not None and amount > self.max_memory:
            self.note_give_up(layer, "memory")
            return False
        return True

    def note_give_up(self, layer, reason):
        """Record which layer gave up first and why (telemetry: once)."""
        if self.gave_up_layer is not None:
            return
        self.gave_up_layer = layer or "unknown"
        self.reason = reason
        telemetry.counter_add("guard.gave_up", layer=self.gave_up_layer, reason=reason)

    # -- control -----------------------------------------------------------

    def child(self, work=None, deadline=None, max_depth=None, max_memory=None):
        """A new budget parented to this one.

        Interruption flows downward only: exhausting (or cancelling) the
        parent trips every descendant's next check with reason
        ``"parent"``, while a child exhausting its own ceilings leaves
        the parent untouched. This is the fairness primitive the solve
        service builds on -- one global governor, one child per tenant,
        one grandchild per request.
        """
        return ResourceBudget(
            work=work,
            deadline=deadline,
            max_depth=max_depth,
            max_memory=max_memory,
            parent=self,
        )

    def cancel(self):
        """Cooperative cancellation: every layer's next check trips."""
        self.cancelled = True

    def remaining_work(self):
        if self.work_limit is None:
            return None
        return max(0, self.work_limit - self.spent)

    def __repr__(self):
        return (
            f"ResourceBudget(work={self.work_limit}, deadline={self.deadline}, "
            f"spent={self.spent}, reason={self.reason})"
        )


# -- the active governor ----------------------------------------------------

_active = NULL_GOVERNOR


def active():
    """The governor currently in force (NULL_GOVERNOR by default)."""
    return _active


@contextmanager
def activate(governor):
    """Install a governor for the duration of a ``with`` block."""
    global _active
    previous = _active
    _active = governor if governor is not None else NULL_GOVERNOR
    try:
        yield _active
    finally:
        _active = previous
