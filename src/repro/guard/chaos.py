"""Deterministic fault injection for the solver stack.

A :class:`ChaosPlan` is a seeded schedule of faults fired at named
injection points threaded through the stack:

- ``solver.pre_solve``   -- the facade, before dispatching an engine;
- ``portfolio.worker_spawn`` -- inside a freshly spawned race/pool worker;
- ``cache.load`` / ``cache.persist`` -- the persistent solve cache's
  read and write paths (payload garbling);
- ``telemetry.flush``    -- the JSONL span writer;
- ``service.accept`` / ``service.worker_crash`` / ``service.flush`` --
  the solve service's admission, worker-execution, and batched
  cache-flush paths.

Every draw is seeded by ``(plan seed, point, salt, per-point count)``,
so a given plan injects the *same* faults at the same points regardless
of thread/process interleaving, and forked workers diverge only through
their ``salt``. The default fault mix is chosen so that every injected
fault is **recoverable**: a chaos run must produce the same sat/unsat
verdicts as a fault-free run (only timings, lane winners, and cache
warmth may differ). That invariant is what the CI chaos smoke asserts.

Enabled via the ``REPRO_CHAOS`` environment variable or the ``--chaos``
CLI flag, both taking ``seed:rate`` (e.g. ``1234:0.1``). Disabled by
default; the fast path is one module-global check.

:class:`ChaosCrash` deliberately does **not** derive from
:class:`~repro.errors.ReproError`: the narrowed error handlers in the
stack must not swallow it, so an injected crash genuinely exercises the
crash-recovery paths (worker death, lane retry, quarantine).
"""

import hashlib
import os
import random
import time

from repro import telemetry

__all__ = [
    "ChaosCrash",
    "ChaosPlan",
    "ENV_VAR",
    "Fault",
    "POINTS",
    "active",
    "inject",
    "install",
    "parse_spec",
    "uninstall",
]

ENV_VAR = "REPRO_CHAOS"

#: Injection points threaded through the stack.
POINTS = (
    "solver.pre_solve",
    "portfolio.worker_spawn",
    "cache.load",
    "cache.persist",
    "telemetry.flush",
    "service.accept",
    "service.worker_crash",
    "service.flush",
)

#: Default fault mix per point. Only recoverable faults: worker crashes
#: are retried / out-raced, corrupt cache payloads are quarantined and
#: re-solved, dropped telemetry spans lose observability, never answers.
DEFAULT_KINDS = {
    "solver.pre_solve": ("delay",),
    "portfolio.worker_spawn": ("crash",),
    "cache.load": ("corrupt",),
    "cache.persist": ("corrupt",),
    "telemetry.flush": ("drop",),
    # Service points (all recoverable): a dropped accept answers a
    # structured unknown, a crashed worker is retried once then degrades,
    # a dropped flush defers persistence to the next batch/shutdown.
    "service.accept": ("delay", "drop"),
    "service.worker_crash": ("crash",),
    "service.flush": ("drop",),
}


class ChaosCrash(RuntimeError):
    """An injected hard crash (intentionally outside the ReproError taxonomy)."""


class Fault:
    """One fired fault; data faults are applied by the caller."""

    __slots__ = ("point", "kind", "rng")

    def __init__(self, point, kind, rng):
        self.point = point
        self.kind = kind
        self.rng = rng

    def garble(self, text):
        """Deterministically corrupt a serialized payload.

        Half the time the payload is truncated (the whole file stops
        parsing -- a crash mid-write); otherwise a single character is
        flipped (parses fine, caught by per-entry checksums).
        """
        if len(text) < 2:
            return ""
        if self.rng.random() < 0.5:
            cut = 1 + int(self.rng.random() * (len(text) - 1))
            return text[:cut]
        position = int(self.rng.random() * len(text))
        replacement = "#" if text[position] != "#" else "@"
        return text[:position] + replacement + text[position + 1 :]

    def sleep(self):
        """A small injected delay (wall clock only; work is untouched)."""
        time.sleep(self.rng.random() * 0.01)

    def __repr__(self):
        return f"Fault({self.point}, {self.kind})"


class ChaosPlan:
    """A seeded, rate-limited schedule of faults.

    Args:
        seed: integer seed; the whole schedule is a pure function of it.
        rate: per-draw injection probability in [0, 1].
        kinds: optional ``{point: (kind, ...)}`` override of
            :data:`DEFAULT_KINDS` (e.g. ``{"solver.pre_solve":
            ("budget",)}`` for exhaustion tests).
    """

    def __init__(self, seed, rate, kinds=None):
        self.seed = int(seed)
        self.rate = float(rate)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate}")
        self.kinds = dict(DEFAULT_KINDS)
        if kinds:
            self.kinds.update(kinds)
        self._draws = {}
        self.injected = {}  # (point, kind) -> count

    @property
    def total_injected(self):
        return sum(self.injected.values())

    def injected_deltas(self, baseline=None):
        """JSON-safe ``{"point|kind": n}`` since a snapshot (for workers)."""
        baseline = baseline or {}
        deltas = {}
        for key, count in self.injected.items():
            extra = count - baseline.get(key, 0)
            if extra:
                deltas["|".join(key)] = extra
        return deltas

    def _rng(self, point, salt, count):
        digest = hashlib.sha256(
            f"{self.seed}|{point}|{salt}|{count}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def draw(self, point, salt=""):
        """Draw at a point; returns a :class:`Fault` or None."""
        key = (point, str(salt))
        count = self._draws.get(key, 0)
        self._draws[key] = count + 1
        rng = self._rng(point, salt, count)
        if rng.random() >= self.rate:
            return None
        kinds = self.kinds.get(point) or ("delay",)
        kind = kinds[int(rng.random() * len(kinds)) % len(kinds)]
        self.injected[(point, kind)] = self.injected.get((point, kind), 0) + 1
        telemetry.counter_add("chaos.injected", point=point, kind=kind)
        return Fault(point, kind, rng)


def parse_spec(spec):
    """Parse a ``seed:rate`` spec (e.g. ``1234:0.1``) into a plan."""
    try:
        seed_text, rate_text = str(spec).split(":", 1)
        return ChaosPlan(int(seed_text), float(rate_text))
    except ValueError as error:
        raise ValueError(
            f"bad chaos spec {spec!r} (expected 'seed:rate', e.g. '1234:0.1')"
        ) from error


# -- the active plan --------------------------------------------------------

_plan = None
_env_checked = False


def install(plan):
    """Activate a plan for this process (overrides the env variable)."""
    global _plan, _env_checked
    _plan = plan
    _env_checked = True
    return plan


def uninstall():
    """Deactivate chaos; the env variable will be re-read on next use."""
    global _plan, _env_checked
    _plan = None
    _env_checked = False


def active():
    """The active plan, lazily parsed from ``REPRO_CHAOS`` (or None).

    The lazy env read means worker processes -- forked or spawned --
    inherit chaos automatically.
    """
    global _plan, _env_checked
    if not _env_checked:
        _env_checked = True
        spec = os.environ.get(ENV_VAR)
        if spec:
            _plan = parse_spec(spec)
    return _plan


def inject(point, salt="", governor=None):
    """Draw at an injection point and apply control-flow faults in place.

    ``crash`` raises :class:`ChaosCrash`; ``delay`` sleeps briefly;
    ``budget`` cancels the (given or active) governor so the solve
    degrades to a structured ``unknown``. Data faults (``corrupt``,
    ``drop``) are returned as a :class:`Fault` for the caller to apply.
    Returns None when nothing fired or the fault was applied here.
    """
    plan = active()
    if plan is None:
        return None
    fault = plan.draw(point, salt=salt)
    if fault is None:
        return None
    if fault.kind == "crash":
        raise ChaosCrash(f"chaos: injected crash at {point}")
    if fault.kind == "delay":
        fault.sleep()
        return None
    if fault.kind == "budget":
        if governor is None:
            from repro.guard import governor as governor_module

            governor = governor_module.active()
        governor.cancel()
        return None
    return fault
