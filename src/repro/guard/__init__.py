"""Resource governance and fault injection for the solver stack.

Two cooperating subsystems:

- :mod:`repro.guard.governor` -- the :class:`ResourceBudget` envelope
  (work ceiling, wall-clock deadline, recursion/memory ceilings,
  cooperative cancellation) that every layer checks via the active
  governor, plus the give-up bookkeeping that turns exhaustion into a
  structured ``unknown`` instead of an exception escaping the facade.
- :mod:`repro.guard.chaos` -- seeded, deterministic fault injection
  (crashes, delays, garbled payloads, budget exhaustion) at named
  points, so the degradation paths are provably exercised by tests and
  the CI chaos smoke.
"""

from repro.guard.governor import (
    NULL_GOVERNOR,
    Deadline,
    NullGovernor,
    ResourceBudget,
    activate,
    active,
)

__all__ = [
    "Deadline",
    "NullGovernor",
    "NULL_GOVERNOR",
    "ResourceBudget",
    "activate",
    "active",
]
