"""Portfolio lanes: the configurations the scheduler races.

The paper's portfolio (Section 5.1) races the *unbounded original*
constraint against the *STAUB-bounded translation* and takes the first
usable answer. Here that grid is:

- one :class:`BaselineTask` per solver profile (``zorro`` / ``corvus``)
  solving the original constraint, and
- one :class:`ArbitrageTask` per width strategy running the full
  underapproximate-then-verify pipeline.

The bounded lane bit-blasts to SAT, which is identical under both
profiles, so the nominal {bounded, unbounded} x {zorro, corvus} grid
collapses to three distinct lanes by default -- racing the bounded lane
twice would just duplicate work.

Lane answers are mapped to the *original* question before the scheduler
sees them: a bounded ``unsat`` or an unverified bounded model is
inconclusive (the sound-approximation cases of Fig. 6), so a portfolio
win is always a sound answer.
"""

from repro.core.pipeline import Staub
from repro.portfolio.scheduler import Attempt
from repro.solver import solve_script

#: Conclusive statuses for the unbounded baseline lane.
_CONCLUSIVE = ("sat", "unsat")


class BaselineTask:
    """Solve the original, unbounded constraint under one profile."""

    __slots__ = ("profile", "name")

    def __init__(self, profile="zorro"):
        self.profile = profile
        self.name = f"original/{profile}"

    def attempt(self, script, budget):
        result = solve_script(script, budget=budget, profile=self.profile)
        return Attempt(
            self.name,
            result.status,
            result.status in _CONCLUSIVE,
            result.work,
            payload=result,
        )

    def __repr__(self):
        return f"BaselineTask({self.profile})"


class ArbitrageTask:
    """Run the STAUB pipeline; conclusive only on a *verified* model."""

    __slots__ = ("strategy", "name")

    def __init__(self, strategy="staub"):
        self.strategy = strategy
        self.name = f"staub/{strategy}"

    def attempt(self, script, budget):
        report = self._make_staub().run(script, budget=budget)
        status = "sat" if report.usable else "unknown"
        return Attempt(self.name, status, report.usable, report.total_work, payload=report)

    def _make_staub(self):
        if self.strategy == "staub":
            return Staub()
        if isinstance(self.strategy, int):
            return Staub(width_strategy=self.strategy)
        if isinstance(self.strategy, str) and self.strategy.startswith("fixed"):
            return Staub(width_strategy=int(self.strategy[len("fixed"):]))
        raise ValueError(f"unknown width strategy {self.strategy!r}")

    def __repr__(self):
        return f"ArbitrageTask({self.strategy})"


def default_tasks(profiles=("zorro", "corvus"), strategies=("staub",)):
    """The standard lane set: every profile's baseline plus STAUB lanes."""
    lanes = [BaselineTask(profile) for profile in profiles]
    lanes.extend(ArbitrageTask(strategy) for strategy in strategies)
    return lanes
