"""Portfolio schedulers: race solving lanes, first conclusive answer wins.

Two execution models share one outcome shape:

- :class:`InterleavingScheduler` -- the default, *deterministic* model.
  Lanes are restarted round-robin with geometrically growing work-slice
  budgets on the unified virtual clock, exactly the Luby-style restart
  shape portfolio SAT solvers use. No wall clock, no OS scheduling:
  the winner, every per-lane work figure, and all telemetry are
  byte-identical across runs.
- :func:`parallel_race` -- real ``multiprocessing`` workers, one per
  lane, for the evaluation runner's ``--jobs N`` mode. The first
  conclusive answer wins and the losing processes are terminated. The
  *status* matches the deterministic model (all conclusive lanes agree),
  but the winning lane and wall-clock are scheduling-dependent.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.solver`; lane behavior lives in task objects (see
:mod:`repro.portfolio.tasks`) so that :mod:`repro.core.pipeline` can
build its portfolio accounting on top of :func:`race_precomputed`
without an import cycle.
"""

from repro import telemetry

#: First-round per-lane budget for the interleaved scheduler.
DEFAULT_SLICE = 4096

#: Budget multiplier between rounds.
DEFAULT_GROWTH = 4


class Attempt:
    """One lane's run at one slice budget.

    Attributes:
        lane: the lane name.
        status: ``"sat"`` / ``"unsat"`` / ``"unknown"`` *for the original
            question* (an inconclusive bounded answer reports unknown).
        conclusive: True when this answer settles the original question.
        work: unified work this attempt spent.
        payload: lane-specific result object (SolveResult, report, ...).
    """

    __slots__ = ("lane", "status", "conclusive", "work", "payload")

    def __init__(self, lane, status, conclusive, work, payload=None):
        self.lane = lane
        self.status = status
        self.conclusive = conclusive
        self.work = work
        self.payload = payload

    def __repr__(self):
        tag = "conclusive" if self.conclusive else "inconclusive"
        return f"Attempt({self.lane}, {self.status}, {tag}, work={self.work})"


class PrecomputedAttempt(Attempt):
    """An attempt whose outcome is already known (no script to run)."""

    def __init__(self, lane, conclusive, work, status=None, payload=None):
        status = status if status is not None else ("sat" if conclusive else "unknown")
        Attempt.__init__(self, lane, status, conclusive, work, payload)


class PortfolioOutcome:
    """The result of racing a set of lanes on one script.

    Attributes:
        winner: the winning :class:`Attempt`, or None (every lane
            exhausted its budget inconclusively).
        status: the winner's status, or ``"unknown"``.
        observed_work: the user-observed virtual cost -- lanes run
            concurrently, so each round contributes its longest slice,
            and the final round only the winner's finishing time.
        total_work: everything actually spent across all lanes and
            restarts (the "cluster cost").
        rounds: number of work-slice rounds executed.
        history: per-round lists of :class:`Attempt`.
    """

    __slots__ = ("winner", "status", "observed_work", "total_work", "rounds", "history")

    def __init__(self, winner, observed_work, total_work, rounds, history):
        self.winner = winner
        self.status = winner.status if winner is not None else "unknown"
        self.observed_work = observed_work
        self.total_work = total_work
        self.rounds = rounds
        self.history = history

    @property
    def model(self):
        payload = self.winner.payload if self.winner is not None else None
        return getattr(payload, "model", None)

    def __repr__(self):
        lane = self.winner.lane if self.winner is not None else None
        return (
            f"PortfolioOutcome({self.status}, winner={lane}, "
            f"observed={self.observed_work}, rounds={self.rounds})"
        )


def _pick_winner(attempts):
    """The conclusive attempt that finishes first on the virtual clock.

    Minimum work wins; ``min`` is stable, so ties break toward the
    earlier lane in configuration order -- deterministic either way.
    """
    conclusive = [attempt for attempt in attempts if attempt.conclusive]
    if not conclusive:
        return None
    return min(conclusive, key=lambda attempt: attempt.work)


def race_precomputed(attempts):
    """Race already-computed attempts (one virtual round, no restarts).

    This is the accounting core shared with
    :func:`repro.core.pipeline.portfolio_time`: the lanes ran
    concurrently, the first conclusive finisher wins, and the observed
    cost is the winner's work -- or, with no winner, the longest lane
    (every core ran to exhaustion).
    """
    attempts = list(attempts)
    if not attempts:
        raise ValueError("cannot race an empty portfolio")
    winner = _pick_winner(attempts)
    total = sum(attempt.work for attempt in attempts)
    if winner is None:
        observed = max(attempt.work for attempt in attempts)
    else:
        observed = winner.work
    return PortfolioOutcome(winner, observed, total, rounds=1, history=[attempts])


class InterleavingScheduler:
    """Deterministic round-robin portfolio over restartable lanes.

    Args:
        tasks: lane objects exposing ``name`` and
            ``attempt(script, budget) -> Attempt``.
        budget: overall per-lane work budget (None = a single unlimited
            round).
        initial_slice: first-round budget per lane.
        growth: slice multiplier between rounds.
    """

    def __init__(
        self,
        tasks,
        budget=None,
        initial_slice=DEFAULT_SLICE,
        growth=DEFAULT_GROWTH,
    ):
        if not tasks:
            raise ValueError("portfolio needs at least one lane")
        if growth < 2:
            raise ValueError("slice growth must be at least 2")
        self.tasks = list(tasks)
        self.budget = budget
        self.initial_slice = initial_slice
        self.growth = growth

    def run(self, script):
        """Race the lanes on one script; returns a :class:`PortfolioOutcome`."""
        history = []
        total = 0
        if self.budget is None:
            slice_budget = None  # one unlimited round
        else:
            slice_budget = min(self.initial_slice, self.budget)
        with telemetry.span("portfolio", lanes=len(self.tasks)) as span:
            while True:
                attempts = []
                for task in self.tasks:
                    attempt = task.attempt(script, slice_budget)
                    attempts.append(attempt)
                    total += attempt.work
                history.append(attempts)
                winner = _pick_winner(attempts)
                exhausted = slice_budget is None or slice_budget >= self.budget
                if winner is not None or exhausted:
                    break
                slice_budget = min(slice_budget * self.growth, self.budget)
            observed = sum(
                max(attempt.work for attempt in round_attempts)
                for round_attempts in history[:-1]
            )
            if winner is not None:
                observed += winner.work
            else:
                observed += max(attempt.work for attempt in history[-1])
            span.set_attr("rounds", len(history))
            span.set_attr("winner", winner.lane if winner else None)
            span.settle(observed)
        outcome = PortfolioOutcome(winner, observed, total, len(history), history)
        self._record(outcome)
        return outcome

    @staticmethod
    def _record(outcome):
        if not telemetry.enabled:
            return
        lane = outcome.winner.lane if outcome.winner is not None else "none"
        telemetry.counter_add("portfolio.races")
        telemetry.counter_add("portfolio.winner", lane=lane)
        telemetry.counter_add("portfolio.rounds", outcome.rounds)
        telemetry.observe("portfolio.observed_work", outcome.observed_work)
        telemetry.observe("portfolio.total_work", outcome.total_work)


# -- real parallelism -------------------------------------------------------


def _race_worker(task, script_text, budget, index, queue):
    """Run one lane in a worker process and report a picklable summary."""
    from repro.cache.store import encode_model
    from repro.smtlib.parser import parse_script

    try:
        script = parse_script(script_text)
        attempt = task.attempt(script, budget)
        model = getattr(attempt.payload, "model", None)
        try:
            encoded = encode_model(model)
        except TypeError:
            encoded = None
        queue.put(
            (index, task.name, attempt.status, attempt.conclusive, attempt.work, encoded)
        )
    except Exception as error:  # pragma: no cover - worker crash safety net
        queue.put((index, task.name, "error", False, 0, repr(error)))


def parallel_race(tasks, script, budget=None, jobs=None, wall_timeout=600.0):
    """Race lanes as real OS processes; first conclusive answer wins.

    Args:
        tasks: lane objects (must be picklable).
        script: the script to solve (shipped to workers as SMT-LIB text).
        budget: per-lane unified work budget.
        jobs: max concurrent worker processes (default: one per lane).
        wall_timeout: safety net in wall seconds per queue wait.

    Returns:
        A :class:`PortfolioOutcome`. ``winner.payload`` is the decoded
        model dict (or None); per-lane work is as reported by the lanes
        that finished before the race was decided.
    """
    import multiprocessing
    import queue as queue_module

    from repro.cache.store import decode_model
    from repro.smtlib.printer import print_script

    tasks = list(tasks)
    if not tasks:
        raise ValueError("cannot race an empty portfolio")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    results_queue = context.Queue()
    text = print_script(script)
    pending = list(enumerate(tasks))
    running = {}
    attempts = []
    winner = None
    jobs = len(tasks) if jobs is None else max(1, jobs)

    def launch_next():
        while pending and len(running) < jobs:
            index, task = pending.pop(0)
            process = context.Process(
                target=_race_worker,
                args=(task, text, budget, index, results_queue),
                daemon=True,
            )
            process.start()
            running[index] = process

    try:
        launch_next()
        while running and winner is None:
            try:
                index, lane, status, conclusive, work, model = results_queue.get(
                    timeout=wall_timeout
                )
            except queue_module.Empty:
                break  # safety net: treat as exhausted
            process = running.pop(index, None)
            if process is not None:
                process.join(timeout=5)
            if status == "error":
                continue
            payload = None
            if conclusive and model is not None:
                payload = _ModelPayload(decode_model(model))
            attempt = Attempt(lane, status, conclusive, work, payload)
            attempts.append(attempt)
            if conclusive:
                winner = attempt
                break
            launch_next()
    finally:
        for process in running.values():
            if process.is_alive():
                process.terminate()
            process.join(timeout=5)

    total = sum(attempt.work for attempt in attempts)
    if winner is not None:
        observed = winner.work
    elif attempts:
        observed = max(attempt.work for attempt in attempts)
    else:
        observed = 0
    outcome = PortfolioOutcome(winner, observed, total, rounds=1, history=[attempts])
    InterleavingScheduler._record(outcome)
    return outcome


class _ModelPayload:
    """Minimal payload wrapper so ``outcome.model`` works for races."""

    __slots__ = ("model",)

    def __init__(self, model):
        self.model = model
