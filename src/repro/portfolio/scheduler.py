"""Portfolio schedulers: race solving lanes, first conclusive answer wins.

Two execution models share one outcome shape:

- :class:`InterleavingScheduler` -- the default, *deterministic* model.
  Lanes are restarted round-robin with geometrically growing work-slice
  budgets on the unified virtual clock, exactly the Luby-style restart
  shape portfolio SAT solvers use. No wall clock, no OS scheduling:
  the winner, every per-lane work figure, and all telemetry are
  byte-identical across runs.
- :func:`parallel_race` -- real ``multiprocessing`` workers, one per
  lane, for the evaluation runner's ``--jobs N`` mode. The first
  conclusive answer wins and the losing processes are terminated. The
  *status* matches the deterministic model (all conclusive lanes agree),
  but the winning lane and wall-clock are scheduling-dependent.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.solver`; lane behavior lives in task objects (see
:mod:`repro.portfolio.tasks`) so that :mod:`repro.core.pipeline` can
build its portfolio accounting on top of :func:`race_precomputed`
without an import cycle.
"""

from repro import guard, telemetry
from repro.errors import ReproError
from repro.guard import chaos

#: First-round per-lane budget for the interleaved scheduler.
DEFAULT_SLICE = 4096

#: Budget multiplier between rounds.
DEFAULT_GROWTH = 4

#: Wall seconds before relaunching a crashed parallel lane (doubles per crash).
CRASH_RETRY_BACKOFF = 0.05

#: How many times a crashed lane is relaunched before being written off.
CRASH_RETRIES = 1


def terminate_processes(processes, join_timeout=5.0):
    """Terminate, join, and as a last resort kill every process given.

    The zombie-freedom primitive shared by :func:`parallel_race` and the
    solve service's worker pool: after this returns, none of the given
    processes is running (``kill`` is the escalation when ``terminate``
    is ignored).
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
        process.join(timeout=join_timeout)
        if process.is_alive():  # terminate was ignored: last resort
            process.kill()
            process.join(timeout=join_timeout)


class Attempt:
    """One lane's run at one slice budget.

    Attributes:
        lane: the lane name.
        status: ``"sat"`` / ``"unsat"`` / ``"unknown"`` *for the original
            question* (an inconclusive bounded answer reports unknown).
        conclusive: True when this answer settles the original question.
        work: unified work this attempt spent.
        payload: lane-specific result object (SolveResult, report, ...).
    """

    __slots__ = ("lane", "status", "conclusive", "work", "payload")

    def __init__(self, lane, status, conclusive, work, payload=None):
        self.lane = lane
        self.status = status
        self.conclusive = conclusive
        self.work = work
        self.payload = payload

    def __repr__(self):
        tag = "conclusive" if self.conclusive else "inconclusive"
        return f"Attempt({self.lane}, {self.status}, {tag}, work={self.work})"


class PrecomputedAttempt(Attempt):
    """An attempt whose outcome is already known (no script to run)."""

    def __init__(self, lane, conclusive, work, status=None, payload=None):
        status = status if status is not None else ("sat" if conclusive else "unknown")
        Attempt.__init__(self, lane, status, conclusive, work, payload)


class PortfolioOutcome:
    """The result of racing a set of lanes on one script.

    Attributes:
        winner: the winning :class:`Attempt`, or None (every lane
            exhausted its budget inconclusively).
        status: the winner's status, or ``"unknown"``.
        observed_work: the user-observed virtual cost -- lanes run
            concurrently, so each round contributes its longest slice,
            and the final round only the winner's finishing time.
        total_work: everything actually spent across all lanes and
            restarts (the "cluster cost").
        rounds: number of work-slice rounds executed.
        history: per-round lists of :class:`Attempt`.
    """

    __slots__ = ("winner", "status", "observed_work", "total_work", "rounds", "history")

    def __init__(self, winner, observed_work, total_work, rounds, history):
        self.winner = winner
        self.status = winner.status if winner is not None else "unknown"
        self.observed_work = observed_work
        self.total_work = total_work
        self.rounds = rounds
        self.history = history

    @property
    def model(self):
        payload = self.winner.payload if self.winner is not None else None
        return getattr(payload, "model", None)

    def __repr__(self):
        lane = self.winner.lane if self.winner is not None else None
        return (
            f"PortfolioOutcome({self.status}, winner={lane}, "
            f"observed={self.observed_work}, rounds={self.rounds})"
        )


def _pick_winner(attempts):
    """The conclusive attempt that finishes first on the virtual clock.

    Minimum work wins; ``min`` is stable, so ties break toward the
    earlier lane in configuration order -- deterministic either way.
    """
    conclusive = [attempt for attempt in attempts if attempt.conclusive]
    if not conclusive:
        return None
    return min(conclusive, key=lambda attempt: attempt.work)


def race_precomputed(attempts):
    """Race already-computed attempts (one virtual round, no restarts).

    This is the accounting core shared with
    :func:`repro.core.pipeline.portfolio_time`: the lanes ran
    concurrently, the first conclusive finisher wins, and the observed
    cost is the winner's work -- or, with no winner, the longest lane
    (every core ran to exhaustion).
    """
    attempts = list(attempts)
    if not attempts:
        raise ValueError("cannot race an empty portfolio")
    winner = _pick_winner(attempts)
    total = sum(attempt.work for attempt in attempts)
    if winner is None:
        observed = max(attempt.work for attempt in attempts)
    else:
        observed = winner.work
    return PortfolioOutcome(winner, observed, total, rounds=1, history=[attempts])


class InterleavingScheduler:
    """Deterministic round-robin portfolio over restartable lanes.

    Args:
        tasks: lane objects exposing ``name`` and
            ``attempt(script, budget) -> Attempt``.
        budget: overall per-lane work budget (None = a single unlimited
            round).
        initial_slice: first-round budget per lane.
        growth: slice multiplier between rounds.
    """

    def __init__(
        self,
        tasks,
        budget=None,
        initial_slice=DEFAULT_SLICE,
        growth=DEFAULT_GROWTH,
    ):
        if not tasks:
            raise ValueError("portfolio needs at least one lane")
        if growth < 2:
            raise ValueError("slice growth must be at least 2")
        self.tasks = list(tasks)
        self.budget = budget
        self.initial_slice = initial_slice
        self.growth = growth

    def run(self, script):
        """Race the lanes on one script; returns a :class:`PortfolioOutcome`.

        Degradation semantics: a lane that raises a :class:`ReproError`
        records an inconclusive ``"error"`` attempt; a lane that crashes
        (:class:`~repro.guard.chaos.ChaosCrash`) is retried once on the
        next -- exponentially larger -- slice, then dropped from the race
        with a ``portfolio.lane_crashed`` counter. Surviving lanes keep
        racing; the race itself never raises.
        """
        history = []
        total = 0
        if self.budget is None:
            slice_budget = None  # one unlimited round
        else:
            slice_budget = min(self.initial_slice, self.budget)
        governor = guard.active()
        active_tasks = list(self.tasks)
        crashes = {}
        winner = None
        with telemetry.span("portfolio", lanes=len(self.tasks)) as span:
            while active_tasks and not governor.interrupted("portfolio"):
                attempts = []
                retry_pending = False
                for task in list(active_tasks):
                    attempt = self._attempt_lane(
                        task, script, slice_budget, crashes, active_tasks
                    )
                    if attempt.status == "crashed" and task in active_tasks:
                        retry_pending = True
                    attempts.append(attempt)
                    total += attempt.work
                history.append(attempts)
                winner = _pick_winner(attempts)
                if winner is not None:
                    break
                exhausted = (
                    slice_budget is None or slice_budget >= self.budget
                )
                if exhausted and not retry_pending:
                    break
                if slice_budget is not None:
                    slice_budget = min(slice_budget * self.growth, self.budget)
            observed = sum(
                max(attempt.work for attempt in round_attempts)
                for round_attempts in history[:-1]
            )
            if winner is not None:
                observed += winner.work
            elif history:
                observed += max(attempt.work for attempt in history[-1])
            span.set_attr("rounds", len(history))
            span.set_attr("winner", winner.lane if winner else None)
            span.settle(observed)
        outcome = PortfolioOutcome(winner, observed, total, len(history), history)
        self._record(outcome)
        return outcome

    @staticmethod
    def _attempt_lane(task, script, slice_budget, crashes, active_tasks):
        """One lane, one slice -- errors and crashes degrade to attempts."""
        try:
            return task.attempt(script, slice_budget)
        except chaos.ChaosCrash:
            count = crashes.get(task.name, 0) + 1
            crashes[task.name] = count
            if count > CRASH_RETRIES:
                active_tasks.remove(task)
                telemetry.counter_add("portfolio.lane_crashed", lane=task.name)
            return Attempt(task.name, "crashed", False, 0)
        except ReproError:
            telemetry.counter_add(
                "solver.internal_error", site="portfolio", lane=task.name
            )
            return Attempt(task.name, "error", False, 0)

    @staticmethod
    def _record(outcome):
        if not telemetry.enabled:
            return
        lane = outcome.winner.lane if outcome.winner is not None else "none"
        telemetry.counter_add("portfolio.races")
        telemetry.counter_add("portfolio.winner", lane=lane)
        telemetry.counter_add("portfolio.rounds", outcome.rounds)
        telemetry.observe("portfolio.observed_work", outcome.observed_work)
        telemetry.observe("portfolio.total_work", outcome.total_work)


# -- real parallelism -------------------------------------------------------


def _race_worker(task, script_text, budget, index, queue):
    """Run one lane in a worker process and report a picklable summary."""
    import os

    from repro.cache.store import encode_model
    from repro.smtlib.parser import parse_script

    try:
        chaos.inject("portfolio.worker_spawn", salt=str(index))
    except chaos.ChaosCrash:
        os._exit(70)  # simulated hard crash: no result, nonzero exit code
    try:
        script = parse_script(script_text)
        attempt = task.attempt(script, budget)
        model = getattr(attempt.payload, "model", None)
        try:
            encoded = encode_model(model)
        except TypeError:
            encoded = None
        queue.put(
            (index, task.name, attempt.status, attempt.conclusive, attempt.work, encoded)
        )
    except ReproError as error:
        # Known solver failures become inconclusive attempts; anything
        # else kills the worker and is handled as a crash by the parent.
        queue.put((index, task.name, "error", False, 0, repr(error)))


def parallel_race(tasks, script, budget=None, jobs=None, wall_timeout=600.0):
    """Race lanes as real OS processes; first conclusive answer wins.

    Args:
        tasks: lane objects (must be picklable).
        script: the script to solve (shipped to workers as SMT-LIB text).
        budget: per-lane unified work budget.
        jobs: max concurrent worker processes (default: one per lane).
        wall_timeout: overall wall-clock deadline in seconds (also bounded
            by the active governor's deadline, if any).

    Returns:
        A :class:`PortfolioOutcome`. ``winner.payload`` is the decoded
        model dict (or None); per-lane work is as reported by the lanes
        that finished before the race was decided.

    Crash recovery: a worker that dies without reporting (segfault,
    ``os._exit``, injected :class:`~repro.guard.chaos.ChaosCrash`) is
    relaunched once after an exponential backoff, then written off with a
    ``portfolio.lane_crashed`` counter and a ``"crashed"`` attempt. On
    every exit path all children are terminated and joined -- the race
    never leaks a process.
    """
    import multiprocessing
    import queue as queue_module
    import time

    from repro.cache.store import decode_model
    from repro.smtlib.printer import print_script

    tasks = list(tasks)
    if not tasks:
        raise ValueError("cannot race an empty portfolio")
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    results_queue = context.Queue()
    text = print_script(script)
    jobs = len(tasks) if jobs is None else max(1, jobs)

    governor = guard.active()
    deadline = time.monotonic() + wall_timeout
    if governor.deadline is not None:
        deadline = min(deadline, governor.deadline.at)

    task_by_index = dict(enumerate(tasks))
    pending = list(enumerate(tasks))
    delayed = []  # (ready_at, index, task): crashed lanes awaiting relaunch
    running = {}
    crash_counts = {}
    attempts = []
    winner = None

    def launch(now):
        for entry in [entry for entry in delayed if entry[0] <= now]:
            delayed.remove(entry)
            pending.append((entry[1], entry[2]))
        while pending and len(running) < jobs:
            index, task = pending.pop(0)
            process = context.Process(
                target=_race_worker,
                args=(task, text, budget, index, results_queue),
                daemon=True,
            )
            process.start()
            running[index] = process

    def handle(message):
        index, lane, status, conclusive, work, model = message
        process = running.pop(index, None)
        if process is not None:
            process.join(timeout=5)
        if status == "error":
            telemetry.counter_add(
                "solver.internal_error", site="parallel_race", lane=lane
            )
            return None
        payload = None
        if conclusive and model is not None:
            payload = _ModelPayload(decode_model(model))
        attempt = Attempt(lane, status, conclusive, work, payload)
        attempts.append(attempt)
        return attempt if conclusive else None

    def reap(index):
        """A worker died without reporting: retry once, then write off."""
        process = running.pop(index)
        process.join(timeout=5)
        lane = task_by_index[index].name
        count = crash_counts.get(index, 0) + 1
        crash_counts[index] = count
        if count <= CRASH_RETRIES:
            backoff = CRASH_RETRY_BACKOFF * (2 ** (count - 1))
            delayed.append((time.monotonic() + backoff, index, task_by_index[index]))
        else:
            telemetry.counter_add("portfolio.lane_crashed", lane=lane)
            attempts.append(Attempt(lane, "crashed", False, 0))

    try:
        launch(time.monotonic())
        while winner is None and (running or pending or delayed):
            now = time.monotonic()
            if now >= deadline or governor.interrupted("portfolio"):
                break
            launch(now)
            try:
                message = results_queue.get(
                    timeout=min(0.1, max(0.01, deadline - now))
                )
            except queue_module.Empty:
                message = None
            if message is not None:
                winner = handle(message)
                continue
            for index in [
                index
                for index, process in running.items()
                if not process.is_alive()
            ]:
                # Drain first: the worker may have queued its result just
                # before exiting; losing it would misreport a crash.
                try:
                    leftover = results_queue.get(timeout=0.2)
                except queue_module.Empty:
                    leftover = None
                if leftover is not None:
                    results_queue.put(leftover)
                    if leftover[0] == index:
                        continue  # processed on the next loop iteration
                reap(index)
    finally:
        # No zombies: every child is terminated and joined on every path.
        terminate_processes(running.values())
        results_queue.cancel_join_thread()

    total = sum(attempt.work for attempt in attempts)
    if winner is not None:
        observed = winner.work
    elif attempts:
        observed = max(attempt.work for attempt in attempts)
    else:
        observed = 0
    outcome = PortfolioOutcome(winner, observed, total, rounds=1, history=[attempts])
    InterleavingScheduler._record(outcome)
    return outcome


class _ModelPayload:
    """Minimal payload wrapper so ``outcome.model`` works for races."""

    __slots__ = ("model",)

    def __init__(self, model):
        self.model = model
