"""Portfolio solving: race {original, STAUB-translated} configurations.

Public surface:

- :class:`~repro.portfolio.scheduler.InterleavingScheduler` --
  deterministic virtual-clock racing (byte-reproducible).
- :func:`~repro.portfolio.scheduler.parallel_race` -- real
  ``multiprocessing`` racing for ``--jobs N``.
- :func:`~repro.portfolio.scheduler.race_precomputed` -- portfolio
  accounting over already-computed lane outcomes (used by
  :func:`repro.core.pipeline.portfolio_time`).
- lane definitions in :mod:`repro.portfolio.tasks`.

This package ``__init__`` imports only the scheduler;
:mod:`repro.portfolio.tasks` pulls in the solver stack and is imported
lazily so that :mod:`repro.core.pipeline` can depend on the scheduler
without a cycle.
"""

from repro.portfolio.scheduler import (
    DEFAULT_GROWTH,
    DEFAULT_SLICE,
    Attempt,
    InterleavingScheduler,
    PortfolioOutcome,
    PrecomputedAttempt,
    parallel_race,
    race_precomputed,
)

__all__ = [
    "Attempt",
    "ArbitrageTask",
    "BaselineTask",
    "DEFAULT_GROWTH",
    "DEFAULT_SLICE",
    "InterleavingScheduler",
    "PortfolioOutcome",
    "PrecomputedAttempt",
    "default_tasks",
    "parallel_race",
    "race_precomputed",
]

_LAZY = {"ArbitrageTask", "BaselineTask", "default_tasks"}


def __getattr__(name):
    if name in _LAZY:
        from repro.portfolio import tasks

        return getattr(tasks, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
