"""Common benchmark-suite machinery."""

import random


class Benchmark:
    """One generated constraint.

    Attributes:
        name: unique identifier within the suite.
        family: generator family (mirrors SMT-LIB directory families).
        script: the :class:`~repro.smtlib.script.Script`.
        expected: ``"sat"``, ``"unsat"``, or None when the generator does
            not know (used by tests to cross-check solver answers).
        planted_model: a known satisfying assignment, when one was planted.
    """

    __slots__ = ("name", "family", "script", "expected", "planted_model")

    def __init__(self, name, family, script, expected=None, planted_model=None):
        self.name = name
        self.family = family
        self.script = script
        self.expected = expected
        self.planted_model = planted_model

    def __repr__(self):
        return f"Benchmark({self.name}, {self.family}, expected={self.expected})"


class Suite:
    """A named list of benchmarks for one logic."""

    def __init__(self, logic, benchmarks):
        self.logic = logic
        self.benchmarks = list(benchmarks)

    def __iter__(self):
        return iter(self.benchmarks)

    def __len__(self):
        return len(self.benchmarks)

    def by_family(self):
        families = {}
        for benchmark in self.benchmarks:
            families.setdefault(benchmark.family, []).append(benchmark)
        return families

    def __repr__(self):
        return f"Suite({self.logic}, {len(self.benchmarks)} benchmarks)"


def make_rng(seed, salt):
    """A deterministic per-family RNG."""
    return random.Random(f"{seed}:{salt}")


def scaled(count, scale):
    """Scale a family size, keeping at least one instance."""
    return max(1, round(count * scale))
