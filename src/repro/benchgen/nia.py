"""QF_NIA workload generator.

Families mirror the SMT-LIB QF_NIA sets the paper evaluates on:

- ``math-cubes``: sum-of-three-cubes equations (the motivating example's
  ``20220315-MathProblems`` family). Satisfiable targets come from planted
  witnesses; unsatisfiable ones use targets that are +-4 mod 9, which no
  cube sum attains -- a fact neither search-based baselines nor the
  bounded transformation can exploit, so these become the realistic
  "nobody wins" residue.
- ``products``: equalities over sums of pairwise variable products with
  ordering chains (VeryMax-like kernels). Witness magnitude is the
  hardness dial: interval contraction narrows these poorly, and
  enumeration cost grows with the witness norm.
- ``quad-system``: two coupled quadratic equations with planted solutions.
- ``verymax-cnf``: small CNF structure over quadratic inequalities,
  exercising the DPLL(T) path.
- ``parity``: unsatisfiable by a parity argument invisible to interval
  reasoning -- both sides time out, as the paper's unsat NIA rows do.
"""

from repro.benchgen.base import Benchmark, Suite, make_rng, scaled
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script


def _cube(term):
    return build.Mul(build.Mul(term, term), term)


def _check_planted(assertions, model, name):
    if not evaluate_assertions(assertions, model):
        raise AssertionError(f"generator bug: planted model fails for {name}")


def _cubes_family(rng, count):
    benchmarks = []
    sat_count = max(1, (2 * count) // 3)
    for index in range(count):
        x = build.IntVar("x")
        y = build.IntVar("y")
        z = build.IntVar("z")
        if index < sat_count:
            witness = {
                "x": rng.randint(-7, 7),
                "y": rng.randint(-7, 7),
                "z": rng.randint(1, 7),
            }
            target = sum(value**3 for value in witness.values())
            if abs(target) < 10:  # keep the constant interesting
                witness["z"] = 7
                target = sum(value**3 for value in witness.values())
            expected = "sat"
        else:
            # No sum of three cubes is congruent to +-4 mod 9.
            base = rng.randint(5, 40)
            target = 9 * base + rng.choice((4, 5))
            witness = None
            expected = "unsat"
        assertion = build.Eq(
            build.Add(_cube(x), _cube(y), _cube(z)), build.IntConst(target)
        )
        if witness is not None:
            _check_planted([assertion], witness, f"cubes-{index}")
        script = Script.from_assertions([assertion], logic="QF_NIA")
        benchmarks.append(
            Benchmark(
                f"cubes-{index:02d}", "math-cubes", script, expected, witness
            )
        )
    return benchmarks


def _products_family(rng, count):
    benchmarks = []
    for index in range(count):
        num_vars = rng.choice((3, 3, 4))
        names = [f"v{i}" for i in range(num_vars)]
        variables = [build.IntVar(name) for name in names]
        # Witness magnitude is the hardness dial: small / medium / large.
        band = (5, 14) if index % 3 == 0 else (12, 40) if index % 3 == 1 else (30, 90)
        witness = {}
        values = sorted(rng.sample(range(band[0], band[1] + 1), num_vars))
        for name, value in zip(names, values):
            witness[name] = value
        target = sum(
            witness[names[i]] * witness[names[j]]
            for i in range(num_vars)
            for j in range(i + 1, num_vars)
        )
        products = [
            build.Mul(variables[i], variables[j])
            for i in range(num_vars)
            for j in range(i + 1, num_vars)
        ]
        assertions = [build.Eq(build.Add(*products), build.IntConst(target))]
        assertions.append(build.Gt(variables[0], build.IntConst(0)))
        for left, right in zip(variables, variables[1:]):
            assertions.append(build.Lt(left, right))
        _check_planted(assertions, witness, f"products-{index}")
        script = Script.from_assertions(assertions, logic="QF_NIA")
        benchmarks.append(
            Benchmark(f"products-{index:02d}", "products", script, "sat", witness)
        )
    return benchmarks


def _quad_system_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.IntVar("x")
        y = build.IntVar("y")
        z = build.IntVar("z")
        witness = {
            "x": rng.randint(2, 25),
            "y": rng.randint(2, 25),
            "z": rng.randint(2, 25),
        }
        c1 = witness["x"] * witness["y"] - witness["z"]
        c2 = witness["y"] * witness["z"] + witness["x"]
        assertions = [
            build.Eq(build.Sub(build.Mul(x, y), z), build.IntConst(c1)),
            build.Eq(build.Add(build.Mul(y, z), x), build.IntConst(c2)),
            build.Gt(x, build.IntConst(0)),
            build.Gt(y, build.IntConst(0)),
            build.Gt(z, build.IntConst(0)),
        ]
        expected = "sat"
        if index % 3 == 2:
            # Make it unsat by shifting one target off any solution: the
            # pair of equations pins (x*y, y*z) exactly, so perturbing c2
            # by a fresh large prime offset while also demanding equality
            # of products cannot be satisfied with positive integers.
            assertions.append(build.Lt(build.Mul(x, y), build.IntConst(c1)))
            expected = "unsat"
            witness = None
        else:
            _check_planted(assertions, witness, f"quad-{index}")
        script = Script.from_assertions(assertions, logic="QF_NIA")
        benchmarks.append(
            Benchmark(f"quad-system-{index:02d}", "quad-system", script, expected, witness)
        )
    return benchmarks


def _verymax_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.IntVar("x")
        y = build.IntVar("y")
        z = build.IntVar("z")
        sat_case = index % 5 != 4
        if sat_case:
            witness = {"x": rng.randint(3, 30), "y": rng.randint(3, 30), "z": rng.randint(3, 30)}
        else:
            witness = None
        xy = build.Mul(x, y)
        yz = build.Mul(y, z)
        xx = build.Mul(x, x)
        if sat_case:
            t1 = witness["x"] * witness["y"]
            t2 = witness["y"] * witness["z"]
            t3 = witness["x"] * witness["x"]
            assertions = [
                build.Or(
                    build.Ge(xy, build.IntConst(t1 + rng.randint(1, 50))),
                    build.Le(yz, build.IntConst(t2 + rng.randint(0, 9))),
                ),
                build.Or(
                    build.Eq(xx, build.IntConst(t3)),
                    build.Lt(build.Add(x, y, z), build.IntConst(0)),
                ),
                build.Gt(x, build.IntConst(0)),
                build.Gt(y, build.IntConst(0)),
                build.Gt(z, build.IntConst(0)),
            ]
            _check_planted(assertions, witness, f"verymax-{index}")
            expected = "sat"
        else:
            # (x - y)^2 must be 0 while x and y are forced apart.
            diff = build.Sub(x, y)
            assertions = [
                build.Eq(build.Mul(diff, diff), build.IntConst(0)),
                build.Or(
                    build.Gt(diff, build.IntConst(0)),
                    build.Lt(diff, build.IntConst(0)),
                ),
                build.Gt(z, build.IntConst(0)),
            ]
            expected = "unsat"
        script = Script.from_assertions(assertions, logic="QF_NIA")
        benchmarks.append(
            Benchmark(f"verymax-{index:02d}", "verymax-cnf", script, expected, witness)
        )
    return benchmarks


def _eigen_family(rng, count):
    """Coupled quadratic systems with eigen-structure witnesses.

    The same constraint shape the termination client's geometric
    nontermination arguments produce: linear equalities coupling (x, y)
    with directions (u, v) and a nonlinear ratio ``l``. The witness
    (y = anchor, l = 2, x just above the guard) sits at magnitude
    ~500-1300, where interval branch-and-prune exhausts the timeout but
    a 12-bit translation is easy -- these are the zorro-side (Z3-like)
    tractability improvements of Table 2.
    """
    benchmarks = []
    for index in range(count):
        threshold = rng.randint(450, 800)
        anchor = threshold + rng.randint(150, 450)
        x = build.IntVar("x")
        y = build.IntVar("y")
        u = build.IntVar("u")
        v = build.IntVar("v")
        ratio = build.IntVar("l")
        two = build.IntConst(2)
        anchor_const = build.IntConst(anchor)
        x_next = build.Add(x, u)
        y_next = build.Add(y, v)
        assertions = [
            build.Gt(x, build.IntConst(threshold)),
            build.Eq(build.Sub(build.Mul(two, x), y), x_next),
            build.Eq(build.Sub(build.Mul(two, y), anchor_const), y_next),
            build.Eq(
                build.Sub(build.Mul(two, x_next), y_next),
                build.Add(x_next, build.Mul(ratio, u)),
            ),
            build.Eq(
                build.Sub(build.Mul(two, y_next), anchor_const),
                build.Add(y_next, build.Mul(ratio, v)),
            ),
            build.Ge(u, build.IntConst(0)),
            build.Ge(ratio, build.IntConst(1)),
        ]
        witness = {
            "x": anchor + rng.randint(1, 40),
            "y": anchor,
            "v": 0,
            "l": 2,
        }
        witness["u"] = witness["x"] - anchor
        _check_planted(assertions, witness, f"eigen-{index}")
        script = Script.from_assertions(assertions, logic="QF_NIA")
        benchmarks.append(
            Benchmark(f"eigen-{index:02d}", "eigen", script, "sat", witness)
        )
    return benchmarks


def _parity_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.IntVar("x")
        y = build.IntVar("y")
        z = build.IntVar("z")
        odd = 2 * rng.randint(20, 200) + 1
        # 2xy + 2z is even; an odd target is unsatisfiable, but only a
        # parity argument shows it -- intervals and bounded search cannot.
        assertion = build.Eq(
            build.Add(
                build.Mul(build.IntConst(2), build.Mul(x, y)),
                build.Mul(build.IntConst(2), z),
            ),
            build.IntConst(odd),
        )
        script = Script.from_assertions([assertion], logic="QF_NIA")
        benchmarks.append(
            Benchmark(f"parity-{index:02d}", "parity", script, "unsat", None)
        )
    return benchmarks


def nia_suite(seed=2024, scale=1.0):
    """The QF_NIA suite (48 constraints at scale 1.0)."""
    rng = make_rng(seed, "nia")
    benchmarks = []
    benchmarks += _cubes_family(rng, scaled(12, scale))
    benchmarks += _products_family(rng, scaled(14, scale))
    benchmarks += _quad_system_family(rng, scaled(9, scale))
    benchmarks += _verymax_family(rng, scaled(9, scale))
    benchmarks += _eigen_family(rng, scaled(6, scale))
    benchmarks += _parity_family(rng, scaled(4, scale))
    return Suite("QF_NIA", benchmarks)
