"""Seeded benchmark generators per SMT-LIB logic.

These stand in for the SMT-LIB benchmark repository (unavailable offline;
see DESIGN.md). Each generator reproduces the *shape* of a real family --
the constant magnitudes, nonlinearity depth, satisfiable-witness widths
and unsat fractions that drive the paper's tables -- at a reduced count.

All generators are deterministic in their seed.
"""

from repro.benchgen.base import Benchmark, Suite
from repro.benchgen.nia import nia_suite
from repro.benchgen.lia import lia_suite
from repro.benchgen.nra import nra_suite
from repro.benchgen.lra import lra_suite

_SUITES = {
    "QF_NIA": nia_suite,
    "QF_LIA": lia_suite,
    "QF_NRA": nra_suite,
    "QF_LRA": lra_suite,
}


def suite_for(logic, seed=2024, scale=1.0):
    """Build the benchmark suite for a logic.

    Args:
        logic: one of QF_NIA / QF_LIA / QF_NRA / QF_LRA.
        seed: RNG seed; same seed -> identical suite.
        scale: size multiplier (1.0 = the default suite size).

    Returns:
        A :class:`Suite`.
    """
    builder = _SUITES.get(logic)
    if builder is None:
        raise ValueError(f"no benchmark suite for logic {logic!r}")
    return builder(seed=seed, scale=scale)


__all__ = ["Benchmark", "Suite", "suite_for", "nia_suite", "lia_suite", "nra_suite", "lra_suite"]
