"""QF_LRA workload generator.

The paper finds theory arbitrage gives *no* improvements on QF_LRA: the
simplex baseline is fast, initial solving times are small, and decimal
constants create semantic differences that defeat verification. The
families below reproduce those conditions:

- ``decimal-systems``: random feasible/infeasible linear systems whose
  constants are decimals like 0.1 that have no finite binary expansion,
  so the fixed-point transformation is inexact from the start.
- ``dyadic-systems``: systems with binary-friendly constants; these are
  representable, but the baseline already solves them quickly, so the
  portfolio still shows no net gain -- the paper's explanation for the
  all-1.000 LRA rows.
"""

from fractions import Fraction

from repro.benchgen.base import Benchmark, Suite, make_rng, scaled
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script


def _linear_sum(variables, coefficients):
    terms = []
    for variable, coefficient in zip(variables, coefficients):
        if coefficient == 0:
            continue
        term = (
            variable
            if coefficient == 1
            else build.Mul(build.RealConst(coefficient), variable)
        )
        terms.append(term)
    if not terms:
        return build.RealConst(0)
    if len(terms) == 1:
        return terms[0]
    return build.Add(*terms)


def _system_family(rng, count, family, constant_pool, witness_pool):
    benchmarks = []
    for index in range(count):
        num_vars = rng.randint(2, 5)
        num_constraints = rng.randint(3, 8)
        names = [f"r{i}" for i in range(num_vars)]
        variables = [build.RealVar(name) for name in names]
        witness = {name: rng.choice(witness_pool) for name in names}
        assertions = []
        for _ in range(num_constraints):
            coefficients = [rng.choice(constant_pool) for _ in range(num_vars)]
            if not any(coefficients):
                coefficients[rng.randrange(num_vars)] = Fraction(1)
            value = sum(
                Fraction(c) * witness[name] for c, name in zip(coefficients, names)
            )
            relation = rng.choice(("<=", ">=", "<", ">"))
            lhs = _linear_sum(variables, coefficients)
            slack = Fraction(rng.randint(1, 40), 10)
            if relation == "<=":
                assertions.append(build.Le(lhs, build.RealConst(value + slack)))
            elif relation == ">=":
                assertions.append(build.Ge(lhs, build.RealConst(value - slack)))
            elif relation == "<":
                assertions.append(build.Lt(lhs, build.RealConst(value + slack)))
            else:
                assertions.append(build.Gt(lhs, build.RealConst(value - slack)))
        expected = "sat"
        if index % 3 == 2:
            coefficients = [Fraction(rng.randint(1, 5)) for _ in range(num_vars)]
            lhs = _linear_sum(variables, coefficients)
            pivot = Fraction(rng.randint(-40, 40), 2)
            assertions.append(build.Ge(lhs, build.RealConst(pivot + Fraction(1, 10))))
            assertions.append(build.Le(lhs, build.RealConst(pivot)))
            expected = "unsat"
            witness = None
        else:
            if not evaluate_assertions(assertions, witness):
                raise AssertionError(f"generator bug: {family}-{index}")
        script = Script.from_assertions(assertions, logic="QF_LRA")
        benchmarks.append(
            Benchmark(f"{family}-{index:02d}", family, script, expected, witness)
        )
    return benchmarks


def lra_suite(seed=2024, scale=1.0):
    """The QF_LRA suite (30 constraints at scale 1.0)."""
    rng = make_rng(seed, "lra")
    decimal_pool = [Fraction(n, 10) for n in range(-30, 31) if n % 10 != 0] + [
        Fraction(n) for n in range(-4, 5)
    ]
    decimal_witness = [Fraction(n, 10) for n in range(-50, 51)]
    dyadic_pool = [Fraction(n, 4) for n in range(-12, 13)]
    dyadic_witness = [Fraction(n, 8) for n in range(-40, 41)]
    benchmarks = []
    benchmarks += _system_family(
        rng, scaled(18, scale), "decimal-systems", decimal_pool, decimal_witness
    )
    benchmarks += _system_family(
        rng, scaled(12, scale), "dyadic-systems", dyadic_pool, dyadic_witness
    )
    return Suite("QF_LRA", benchmarks)
