"""QF_NRA workload generator.

The paper's QF_NRA results: a small number of large verified speedups
(especially under the CVC5-like profile), most constraints unaffected
because initial solving times are short or semantic differences defeat
verification. Families:

- ``dyadic-poly``: univariate/bivariate polynomial equalities whose roots
  are planted dyadic rationals (k / 2^p) -- representable exactly in the
  fixed-point target, so these are the verifiable wins.
- ``coupled``: product/sum systems with dyadic witnesses; interval
  contraction converges slowly on these, giving the baseline long solve
  times.
- ``irrational``: equalities whose only solutions are irrational
  (x^2 = 2 and friends). Satisfiable over the reals, but no finite
  witness exists for either engine -- baseline and arbitrage both fail,
  the "unknown" residue of the NRA rows.
- ``decimal-poly``: equalities with base-10 constants whose solutions are
  non-dyadic; the ICP baseline can recover them as simplest rationals
  while the fixed-point image is inexact (semantic-difference cases).
"""

from fractions import Fraction

from repro.benchgen.base import Benchmark, Suite, make_rng, scaled
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script


def _poly_from_roots(variable, roots):
    """Expanded ``prod (q_i * x - p_i)`` for rational roots p_i / q_i."""
    factors = []
    for root in roots:
        root = Fraction(root)
        factors.append(
            build.Sub(
                build.Mul(build.RealConst(root.denominator), variable),
                build.RealConst(root.numerator),
            )
        )
    product = factors[0]
    for factor in factors[1:]:
        product = build.Mul(product, factor)
    return product


def _dyadic_poly_family(rng, count):
    benchmarks = []
    dyadic_values = [Fraction(n, 4) for n in range(-20, 21)]
    for index in range(count):
        x = build.RealVar("x")
        degree = rng.choice((1, 2, 2))
        roots = rng.sample(dyadic_values, degree)
        witness_root = rng.choice(roots)
        assertions = [build.Eq(_poly_from_roots(x, roots), build.RealConst(0))]
        if rng.random() < 0.5:
            # Pin to one root with a side constraint to make search work.
            assertions.append(
                build.Ge(x, build.RealConst(witness_root - Fraction(1, 8)))
            )
            assertions.append(
                build.Le(x, build.RealConst(witness_root + Fraction(1, 8)))
            )
        witness = {"x": witness_root}
        if not evaluate_assertions(assertions, witness):
            raise AssertionError(f"generator bug: dyadic-poly-{index}")
        script = Script.from_assertions(assertions, logic="QF_NRA")
        benchmarks.append(
            Benchmark(
                f"dyadic-poly-{index:02d}", "dyadic-poly", script, "sat", witness
            )
        )
    return benchmarks


def _coupled_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.RealVar("x")
        y = build.RealVar("y")
        wx = Fraction(rng.randint(2, 40), rng.choice((1, 2, 4)))
        wy = Fraction(rng.randint(2, 40), rng.choice((1, 2, 4)))
        witness = {"x": wx, "y": wy}
        product = wx * wy
        total = wx + wy
        assertions = [
            build.Eq(build.Mul(x, y), build.RealConst(product)),
            build.Eq(build.Add(x, y), build.RealConst(total)),
            build.Ge(x, build.RealConst(0)),
            build.Ge(y, build.RealConst(0)),
        ]
        if not evaluate_assertions(assertions, witness):
            raise AssertionError(f"generator bug: coupled-{index}")
        script = Script.from_assertions(assertions, logic="QF_NRA")
        benchmarks.append(
            Benchmark(f"coupled-{index:02d}", "coupled", script, "sat", witness)
        )
    return benchmarks


def _irrational_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.RealVar("x")
        # x*x = d where d is not a rational square: sat over R, but no
        # exact rational witness exists for any engine here.
        non_squares = (2, 3, 5, 6, 7, 8, 10, 11, 12, 13)
        d = non_squares[index % len(non_squares)]
        assertions = [
            build.Eq(build.Mul(x, x), build.RealConst(d)),
            build.Ge(x, build.RealConst(0)),
        ]
        script = Script.from_assertions(assertions, logic="QF_NRA")
        benchmarks.append(
            Benchmark(
                f"irrational-{index:02d}", "irrational", script, None, None
            )
        )
    return benchmarks


def _decimal_poly_family(rng, count):
    benchmarks = []
    for index in range(count):
        x = build.RealVar("x")
        # Root at a tenth (e.g. 0.3): no finite binary expansion.
        numerator = rng.choice([n for n in range(-29, 30) if n % 10 not in (0, 5)])
        root = Fraction(numerator, 10)
        assertions = [
            build.Eq(
                build.Sub(
                    build.Mul(build.RealConst(10), x), build.RealConst(numerator)
                ),
                build.RealConst(0),
            ),
            build.Ge(build.Mul(x, x), build.RealConst(0)),
        ]
        witness = {"x": root}
        if not evaluate_assertions(assertions, witness):
            raise AssertionError(f"generator bug: decimal-poly-{index}")
        script = Script.from_assertions(assertions, logic="QF_NRA")
        benchmarks.append(
            Benchmark(
                f"decimal-poly-{index:02d}", "decimal-poly", script, "sat", witness
            )
        )
    return benchmarks


def nra_suite(seed=2024, scale=1.0):
    """The QF_NRA suite (36 constraints at scale 1.0)."""
    rng = make_rng(seed, "nra")
    benchmarks = []
    benchmarks += _dyadic_poly_family(rng, scaled(12, scale))
    benchmarks += _coupled_family(rng, scaled(8, scale))
    benchmarks += _irrational_family(rng, scaled(8, scale))
    benchmarks += _decimal_poly_family(rng, scaled(8, scale))
    return Suite("QF_NRA", benchmarks)
