"""QF_LIA workload generator.

Families:

- ``cav2009``: random linear systems with planted integer witnesses (and
  an unsat twin built by adding a contradictory pair). The simplex
  baseline is fast here, so theory arbitrage rarely helps -- matching the
  paper's near-1.0 overall LIA speedups.
- ``coin``: Frobenius/coin-problem instances ``a*x + b*y = t`` with
  coprime ``a, b`` and bounds. Satisfiable ones have planted witnesses;
  unsatisfiable ones pick ``t`` outside the reachable set. Branch and
  bound can thrash on these windows, which is where STAUB's verified LIA
  speedups come from (Table 3's small-but-real LIA wins).
- ``window``: equalities under tight inequality windows with a mix of
  feasible and empty windows.
"""

from repro.benchgen.base import Benchmark, Suite, make_rng, scaled
from repro.smtlib import build
from repro.smtlib.evaluator import evaluate_assertions
from repro.smtlib.script import Script


def _linear_sum(variables, coefficients):
    terms = []
    for variable, coefficient in zip(variables, coefficients):
        if coefficient == 0:
            continue
        if coefficient == 1:
            terms.append(variable)
        else:
            terms.append(build.Mul(build.IntConst(coefficient), variable))
    if not terms:
        return build.IntConst(0)
    if len(terms) == 1:
        return terms[0]
    return build.Add(*terms)


def _cav2009_family(rng, count):
    benchmarks = []
    for index in range(count):
        num_vars = rng.randint(3, 6)
        num_constraints = rng.randint(4, 10)
        names = [f"x{i}" for i in range(num_vars)]
        variables = [build.IntVar(name) for name in names]
        witness = {name: rng.randint(-30, 30) for name in names}
        assertions = []
        for _ in range(num_constraints):
            coefficients = [rng.randint(-9, 9) for _ in range(num_vars)]
            if not any(coefficients):
                coefficients[rng.randrange(num_vars)] = 1
            value = sum(c * witness[name] for c, name in zip(coefficients, names))
            relation = rng.choice(("<=", ">=", "="))
            lhs = _linear_sum(variables, coefficients)
            if relation == "<=":
                assertions.append(build.Le(lhs, build.IntConst(value + rng.randint(0, 20))))
            elif relation == ">=":
                assertions.append(build.Ge(lhs, build.IntConst(value - rng.randint(0, 20))))
            else:
                assertions.append(build.Eq(lhs, build.IntConst(value)))
        expected = "sat"
        if index % 3 == 2:
            # Unsat twin: contradictory pair on a fresh combination.
            coefficients = [rng.randint(1, 5) for _ in range(num_vars)]
            lhs = _linear_sum(variables, coefficients)
            pivot = rng.randint(-50, 50)
            assertions.append(build.Ge(lhs, build.IntConst(pivot + 1)))
            assertions.append(build.Le(lhs, build.IntConst(pivot)))
            expected = "unsat"
            witness = None
        else:
            if not evaluate_assertions(assertions, witness):
                raise AssertionError(f"generator bug: cav2009-{index}")
        script = Script.from_assertions(assertions, logic="QF_LIA")
        benchmarks.append(
            Benchmark(f"cav2009-{index:02d}", "cav2009", script, expected, witness)
        )
    return benchmarks


def _coin_family(rng, count):
    """Coin-problem equalities: hard for branch-and-bound windows."""
    coprime_pairs = [(7, 11), (9, 13), (11, 17), (13, 19), (17, 23)]
    benchmarks = []
    for index in range(count):
        a, b = coprime_pairs[index % len(coprime_pairs)]
        x = build.IntVar("x")
        y = build.IntVar("y")
        sat_case = index % 2 == 0
        if sat_case:
            wx = rng.randint(3, 60)
            wy = rng.randint(3, 60)
            target = a * wx + b * wy
            witness = {"x": wx, "y": wy}
            expected = "sat"
        else:
            # The Frobenius number a*b - a - b is the largest value the
            # coin system cannot reach with non-negative coefficients.
            target = a * b - a - b
            witness = None
            expected = "unsat"
        assertions = [
            build.Eq(
                build.Add(
                    build.Mul(build.IntConst(a), x), build.Mul(build.IntConst(b), y)
                ),
                build.IntConst(target),
            ),
            build.Ge(x, build.IntConst(0)),
            build.Ge(y, build.IntConst(0)),
        ]
        if witness is not None and not evaluate_assertions(assertions, witness):
            raise AssertionError(f"generator bug: coin-{index}")
        script = Script.from_assertions(assertions, logic="QF_LIA")
        benchmarks.append(Benchmark(f"coin-{index:02d}", "coin", script, expected, witness))
    return benchmarks


def _window_family(rng, count):
    benchmarks = []
    for index in range(count):
        num_vars = rng.randint(2, 4)
        names = [f"w{i}" for i in range(num_vars)]
        variables = [build.IntVar(name) for name in names]
        witness = {name: rng.randint(1, 40) for name in names}
        coefficients = [rng.randint(2, 7) for _ in range(num_vars)]
        total = sum(c * witness[name] for c, name in zip(coefficients, names))
        sat_case = index % 3 != 1
        # Unsat targets sit strictly above the window's reachable maximum
        # (each variable is at most witness + 6).
        target = total if sat_case else total + 6 * sum(coefficients) + 1
        assertions = [
            build.Eq(_linear_sum(variables, coefficients), build.IntConst(target))
        ]
        for name, variable in zip(names, variables):
            low = witness[name] - rng.randint(0, 6)
            high = witness[name] + rng.randint(0, 6)
            assertions.append(build.Ge(variable, build.IntConst(low)))
            assertions.append(build.Le(variable, build.IntConst(high)))
        expected = "sat" if sat_case else "unsat"
        if sat_case:
            if not evaluate_assertions(assertions, witness):
                raise AssertionError(f"generator bug: window-{index}")
        else:
            witness = None
        script = Script.from_assertions(assertions, logic="QF_LIA")
        benchmarks.append(
            Benchmark(f"window-{index:02d}", "window", script, expected, witness)
        )
    return benchmarks


def _cnf_family(rng, count):
    """Disjunction-heavy LIA (the lazy-DPLL(T) stress family).

    Each instance is one tight equality plus many two-sided window
    disjunctions. The lazy baseline must refute boolean assignments one
    blocking clause at a time -- exponential in the number of
    disjunctions -- while the bit-blasted translation decides the whole
    boolean-arithmetic product space inside a single CNF. These are the
    LIA tractability improvements of Table 2.
    """
    benchmarks = []
    for index in range(count):
        names = ["x0", "x1", "x2"]
        variables = [build.IntVar(name) for name in names]
        coefficients = [3, 5, 7]
        witness = {name: rng.randint(25, 95) for name in names}
        target = sum(c * witness[name] for c, name in zip(coefficients, names))
        assertions = [
            build.Eq(_linear_sum(variables, coefficients), build.IntConst(target))
        ]
        for variable in variables:
            assertions.append(build.Ge(variable, build.IntConst(0)))
        sat_case = index % 4 != 3
        num_disjunctions = rng.randint(8, 11)
        for _ in range(num_disjunctions):
            position = rng.randrange(len(names))
            value = witness[names[position]]
            # One disjunct holds for the witness; the other opens a
            # spurious window elsewhere that the search must refute.
            if rng.random() < 0.5:
                holds = build.Ge(variables[position], build.IntConst(value - rng.randint(0, 4)))
                spurious = build.Le(variables[position], build.IntConst(rng.randint(0, 10)))
            else:
                holds = build.Le(variables[position], build.IntConst(value + rng.randint(0, 4)))
                spurious = build.Ge(
                    variables[position], build.IntConst(value + rng.randint(30, 60))
                )
            assertions.append(build.Or(spurious, holds))
        expected = "sat"
        if not sat_case:
            # Pin one variable away from every witness-satisfying window.
            assertions.append(
                build.Eq(variables[0], build.IntConst(witness[names[0]] + 13))
            )
            # Re-pin the equality so the instance is genuinely unsat: the
            # shifted x0 breaks the equality for every (x1, x2) choice in
            # the remaining windows only if the target parity cannot
            # absorb it; enforce directly with a second equality.
            assertions.append(
                build.Eq(
                    _linear_sum(variables, coefficients),
                    build.IntConst(target + 1),
                )
            )
            expected = "unsat"
            witness = None
        else:
            if not evaluate_assertions(assertions, witness):
                raise AssertionError(f"generator bug: cnf-{index}")
        script = Script.from_assertions(assertions, logic="QF_LIA")
        benchmarks.append(Benchmark(f"cnf-{index:02d}", "cnf", script, expected, witness))
    return benchmarks


def lia_suite(seed=2024, scale=1.0):
    """The QF_LIA suite (40 constraints at scale 1.0)."""
    rng = make_rng(seed, "lia")
    benchmarks = []
    benchmarks += _cav2009_family(rng, scaled(16, scale))
    benchmarks += _coin_family(rng, scaled(10, scale))
    benchmarks += _window_family(rng, scaled(8, scale))
    benchmarks += _cnf_family(rng, scaled(8, scale))
    return Suite("QF_LIA", benchmarks)
