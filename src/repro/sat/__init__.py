"""CDCL SAT solving core.

This is the engine underneath the bounded (bitvector) side of the theory
arbitrage: bit-blasted constraints become CNF and are solved here.

- :mod:`repro.sat.arena` -- flat clause arena shared by the blaster and
  the solver (offset-identified clause blocks, compaction).
- :mod:`repro.sat.cnf` -- arena-backed CNF container, fresh-variable
  allocation, DIMACS I/O.
- :mod:`repro.sat.solver` -- conflict-driven clause learning with
  two-watched-literal propagation, VSIDS branching, phase saving, Luby
  restarts, learned-clause reduction, assumptions, and a deterministic
  work budget used for reproducible "timeouts".
"""

from repro.sat.arena import ClauseArena
from repro.sat.cnf import CNF, parse_dimacs, to_dimacs
from repro.sat.solver import SAT, UNSAT, UNKNOWN, SatSolver, SatStats

__all__ = [
    "ClauseArena",
    "CNF",
    "parse_dimacs",
    "to_dimacs",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SatSolver",
    "SatStats",
]
