"""A conflict-driven clause learning (CDCL) SAT solver on flat arrays.

A faithful MiniSat-style architecture in pure Python:

- a single clause arena (:class:`~repro.sat.arena.ClauseArena`): every
  clause is a block of flat integer words, identified by its arena
  offset -- no per-clause list objects, no ``id()``-based identity;
- two-watched-literal unit propagation over flat watch lists (pairs of
  ``[entry, partner]`` words; a binary clause stores its negated offset
  plus the other literal, so binary visits never touch the arena);
- first-UIP conflict analysis with clause minimization;
- VSIDS variable activities with a heap-backed variable order and phase
  saving; learned-clause activities live in a slot table indexed from
  the clause header;
- Luby-sequence restarts;
- learned-clause database reduction driven by clause activity, with an
  O(1) locked-clause check (a clause serving as a reason is never
  reclaimed) and arena compaction once half the arena is dead space;
- incremental solving under assumptions with final-conflict (unsat
  core) extraction over the assumption set;
- a deterministic work budget (propagation count) so that "timeouts" are
  reproducible across machines -- the evaluation harness uses this as its
  virtual clock.

Literals use the DIMACS convention externally (``v`` / ``-v``) and are
mapped internally to ``2*(v-1)`` / ``2*(v-1)+1``.

Key invariants (relied on throughout; see also README "SAT core
internals"):

- Watch positions are literals 0 and 1 of a block. Propagation may
  reorder literals *within* a block but never changes its offset.
- For blocks of size > 2, a reason block's literal 0 is the literal it
  implied. Propagation cannot displace it while the implication holds
  (a reason's first literal is true, and only false literals are
  swapped out of the watch positions), which is what makes the locked
  check ``lit_val[data[c]] > 0 and reason[data[c] >> 1] == c`` exact.
  Binary clauses propagate straight from the watch pair without
  normalizing the block, so either literal of a size-2 block may be the
  implied one; ``is_locked`` checks both.
- Detaching a locked clause is deferred: the offset goes into a pending
  set and the detach completes when backtracking unassigns the implied
  literal. Until then the clause stays in both watch lists, so
  propagation over it remains sound.
- Compaction remaps every stored offset (watch pairs, reasons, learned
  list, pending detaches, and the attached CNF's clause index) through
  the mapping returned by the arena in one pass.
"""

from repro import guard, telemetry
from repro.errors import SolverError
from repro.sat.arena import ClauseArena

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Reason sentinel: the variable was a decision or assumption.
_NO_REASON = -1


def luby(index):
    """The ``index``-th element (0-based) of the Luby restart sequence.

    The sequence is 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's
    finite-subsequence formulation).
    """
    size = 1
    sequence = 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index %= size
    return 1 << sequence


class SatStats:
    """Work counters; ``work()`` is the deterministic virtual cost."""

    __slots__ = (
        "decisions",
        "propagations",
        "conflicts",
        "restarts",
        "learned_clauses",
        "deleted_clauses",
        "minimized_literals",
    )

    def __init__(self):
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.minimized_literals = 0

    def work(self):
        """Deterministic virtual work: propagations dominate runtime."""
        return self.propagations + 10 * self.conflicts + self.decisions

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class _VarOrder:
    """Max-heap over variable activities (MiniSat's VarOrder)."""

    def __init__(self):
        self.heap = []
        self.position = {}

    # Both sifts move a hole instead of swapping pairs: the comparison
    # sequence and the final heap array are identical to the swap-based
    # formulation, but each step writes one slot instead of two and no
    # helper calls sit on the bump/backtrack hot path.

    def _sift_up(self, index, activity):
        heap = self.heap
        position = self.position
        var = heap[index]
        var_activity = activity[var]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if var_activity > activity[parent_var]:
                heap[index] = parent_var
                position[parent_var] = index
                index = parent
            else:
                break
        heap[index] = var
        position[var] = index

    def _sift_down(self, index, activity):
        heap = self.heap
        position = self.position
        size = len(heap)
        var = heap[index]
        var_activity = activity[var]
        while True:
            left = 2 * index + 1
            if left >= size:
                break
            best_var = heap[left]
            best = left
            right = left + 1
            if right < size:
                right_var = heap[right]
                if activity[right_var] > activity[best_var]:
                    best_var = right_var
                    best = right
            if activity[best_var] > var_activity:
                heap[index] = best_var
                position[best_var] = index
                index = best
            else:
                break
        heap[index] = var
        position[var] = index

    def push(self, var, activity):
        if var in self.position:
            return
        self.position[var] = len(self.heap)
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1, activity)

    def pop(self, activity):
        heap = self.heap
        top = heap[0]
        last = heap.pop()
        del self.position[top]
        if heap:
            heap[0] = last
            self.position[last] = 0
            self._sift_down(0, activity)
        return top

    def update(self, var, activity):
        index = self.position.get(var)
        if index is not None:
            self._sift_up(index, activity)

    def __bool__(self):
        return bool(self.heap)


class SatSolver:
    """CDCL solver over a fixed variable universe.

    Typical standalone use::

        solver = SatSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(max_work=10**7)
        if result == SAT:
            model = solver.model()   # {var: bool}

    Structure-shared use (zero-copy attach to a blasted CNF)::

        solver = SatSolver(cnf=blaster.cnf)
        solver.attach()              # watch all current clauses in place
        ...
        blaster.assert_term(more)    # emits into the same arena
        solver.attach()              # pick up only the new clauses

    An attached solver is the arena's single search consumer: it may
    reorder literals *within* attached blocks (watch normalization), so
    the CNF's clause view preserves clause sets, not literal order.
    """

    def __init__(self, num_vars=0, cnf=None):
        self._cnf = cnf
        self._arena = cnf.arena if cnf is not None else ClauseArena()
        self._attached = 0  # CNF clauses already processed by attach()
        self.num_vars = 0
        self._num_problem = 0  # watched problem clauses (reduce trigger)
        self._learned_refs = []
        self._cla_activity = []  # activity per slot (header word c-3)
        self._free_slots = []
        self._watches = []  # literal -> flat [entry, partner, ...] pairs
        self._lit_val = []  # literal -> 1 true / -1 false / 0 unassigned
        self._level = []
        self._reason = []  # var -> arena offset or _NO_REASON
        self._trail = []
        self._trail_lim = []
        self._queue_head = 0
        self._activity = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order = _VarOrder()
        self._phase = []
        self._seen = []
        self._pending_detach = set()
        self._ok = True
        self.stats = SatStats()
        # Deep-profile peaks, tracked only while telemetry is enabled
        # (kept out of SatStats: they are observability data, not part of
        # the deterministic work/stats contract of a result).
        self._deep_max_trail = 0
        self._deep_max_level = 0
        self._final_conflict = []
        self.grow_to(num_vars)
        if cnf is not None:
            self.grow_to(cnf.num_vars)

    # -- variable / clause management -----------------------------------

    def grow_to(self, num_vars):
        """Ensure variables ``1..num_vars`` exist.

        Bulk-extends the per-variable arrays. Fresh variables carry zero
        activity, so appending them to the heap tail in index order is
        exactly what a sequence of ``_order.push`` calls would produce
        (a zero-activity leaf never sifts up past its parent).
        """
        count = num_vars - self.num_vars
        if count <= 0:
            return
        base = self.num_vars
        self._watches.extend([] for _ in range(2 * count))
        self._lit_val.extend([0] * (2 * count))
        self._level.extend([0] * count)
        self._reason.extend([_NO_REASON] * count)
        self._activity.extend([0.0] * count)
        self._phase.extend([0] * count)
        self._seen.extend([False] * count)
        heap = self._order.heap
        position = self._order.position
        for var in range(base, num_vars):
            position[var] = len(heap)
            heap.append(var)
        self.num_vars = num_vars

    def new_var(self):
        """Allocate one fresh variable; returns its index."""
        self.grow_to(self.num_vars + 1)
        return self.num_vars

    @staticmethod
    def _internal(literal):
        var = abs(literal) - 1
        return 2 * var + (1 if literal < 0 else 0)

    @staticmethod
    def _external(internal):
        var = (internal >> 1) + 1
        return -var if internal & 1 else var

    def _lit_value(self, internal):
        value = self._lit_val[internal]
        if value == 0:
            return None
        return value > 0

    def add_clause(self, literals):
        """Add a problem clause (DIMACS literals). Returns False if the
        solver becomes trivially unsatisfiable."""
        if not self._ok:
            return False
        if self._trail_lim:
            # Incremental use: drop any in-progress assignment first.
            self._backtrack(0)
        for literal in literals:
            self.grow_to(abs(literal))
        seen = set()
        clause = []
        for literal in literals:
            internal = self._internal(literal)
            if internal in seen:
                continue
            if internal ^ 1 in seen:
                return True  # tautology
            value = self._lit_val[internal]
            if value > 0:
                return True  # already satisfied at level 0
            if value < 0:
                continue  # falsified at level 0: drop the literal
            seen.add(internal)
            clause.append(internal)
        return self._install_root(clause)

    def attach(self, start=None):
        """Watch the attached CNF's clauses in place, without copying.

        Processes clauses ``start..`` (default: everything added since
        the previous ``attach`` call). Each block is root-simplified by
        *reading* it: satisfied blocks are skipped, blocks containing
        root-false literals get a private simplified copy in the same
        arena, everything else is watched at its original offset. Units
        propagate immediately, exactly as a loop of ``add_clause`` calls
        would. Returns False once the solver is root-unsatisfiable.
        """
        if self._cnf is None:
            raise SolverError("attach() requires a solver constructed with cnf=")
        if start is None:
            start = self._attached
        cnf = self._cnf
        self.grow_to(cnf.num_vars)
        self._attached = len(cnf)
        if not self._ok:
            return False
        if self._trail_lim:
            self._backtrack(0)
        arena = self._arena
        data = arena.data
        lit_val = self._lit_val
        watches = self._watches
        refs = cnf._refs
        for index in range(start, len(cnf)):
            ref = refs[index]
            size = data[ref - 1]
            satisfied = False
            has_false = False
            for k in range(ref, ref + size):
                value = lit_val[data[k]]
                if value:
                    if value > 0:
                        satisfied = True
                        break
                    has_false = True
            if satisfied:
                continue
            if not has_false:
                if size >= 2:
                    # Common case, inlined _install_root/_watch: watch
                    # the untouched block in place.
                    first = data[ref]
                    second = data[ref + 1]
                    entry = -ref if size == 2 else ref
                    watch_list = watches[first ^ 1]
                    watch_list.append(entry)
                    watch_list.append(second)
                    watch_list = watches[second ^ 1]
                    watch_list.append(entry)
                    watch_list.append(first)
                    self._num_problem += 1
                    continue
                clause = None  # empty/unit block: full handling
            else:
                clause = [
                    data[k] for k in range(ref, ref + size) if lit_val[data[k]] == 0
                ]
            if not self._install_root(clause, ref=ref):
                return False
        return True

    def _install_root(self, clause, ref=None):
        """Install a root-simplified clause: empty/unit handling, else
        watch it. ``clause`` is internal literals, or None to watch the
        pre-existing block ``ref`` unmodified."""
        if clause is None:
            size = self._arena.data[ref - 1]
            if size == 0:
                self._ok = False
                return False
            if size == 1:
                return self._root_enqueue(self._arena.data[ref])
            self._watch(ref)
            self._num_problem += 1
            return True
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            return self._root_enqueue(clause[0])
        self._watch(self._arena.add(clause))
        self._num_problem += 1
        return True

    def _root_enqueue(self, internal):
        if not self._enqueue(internal, _NO_REASON):
            self._ok = False
            return False
        if self._propagate() is not None:
            self._ok = False
            return False
        return True

    def _watch(self, ref):
        """Put a block in the watch lists of its first two literals.

        Watch lists are flat ``[entry, partner]`` pairs. Binary clauses
        store ``-ref`` as the entry with the partner literal alongside:
        since a binary clause's partner can never change, propagation
        resolves it from the pair alone with zero arena reads. Longer
        clauses store ``ref``; their partner slot is only a debugging
        hint (the current partner is re-read from the block), so a
        stale value is harmless.
        """
        data = self._arena.data
        first = data[ref]
        second = data[ref + 1]
        entry = -ref if data[ref - 1] == 2 else ref
        watch_list = self._watches[first ^ 1]
        watch_list.append(entry)
        watch_list.append(second)
        watch_list = self._watches[second ^ 1]
        watch_list.append(entry)
        watch_list.append(first)

    # -- assignment and propagation --------------------------------------

    def _enqueue(self, internal, reason_ref=_NO_REASON):
        value = self._lit_val[internal]
        if value:
            return value > 0
        self._lit_val[internal] = 1
        self._lit_val[internal ^ 1] = -1
        var = internal >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason_ref
        self._trail.append(internal)
        return True

    def _propagate(self):
        """Unit propagation. Returns the conflicting clause offset or None.

        This is the solver's hot loop, and it is *search-path identical*
        to a clause-object implementation that visits each watch list in
        order: same enqueues in the same order, same conflicts -- only
        cheaper per visit.

        - Binary clauses (negative entries) resolve from the pair alone:
          zero arena reads on the satisfied and implied paths.
        - Longer clauses re-read their two watch slots; a satisfied
          partner keeps the watcher with the normalization swap
          *deferred* (the next normalizing visit canonicalizes the block
          identically, and analysis only ever reads blocks that were
          normalized by the visit that returned or enqueued them).
        - The scan is two-phase: until the first watcher moves away,
          kept pairs need no list writes at all; after the first move
          the tail is compacted in place with a write pointer.
        """
        watches = self._watches
        lit_val = self._lit_val
        data = self._arena.data
        trail = self._trail
        level_count = len(self._trail_lim)
        level = self._level
        reason = self._reason
        head = self._queue_head
        trail_len = len(trail)
        propagated = 0
        while head < trail_len:
            literal = trail[head]
            head += 1
            propagated += 1
            false_literal = literal ^ 1
            watch_list = watches[literal]
            end = len(watch_list)
            read = 0
            # Phase 1: no watcher has moved away yet, so every pair keeps
            # its position and the list needs no writes at all. The first
            # relocation breaks into the compacting phase below.
            while read < end:
                clause = watch_list[read]
                if clause < 0:
                    # Binary clause: partner literal lives in the pair.
                    partner = watch_list[read + 1]
                    value = lit_val[partner]
                    if value > 0:
                        read += 2
                        continue
                    if value == 0:  # implied (inlined _enqueue)
                        lit_val[partner] = 1
                        lit_val[partner ^ 1] = -1
                        partner_var = partner >> 1
                        level[partner_var] = level_count
                        reason[partner_var] = -clause
                        trail.append(partner)
                        trail_len += 1
                        read += 2
                        continue
                    # Both literals false: conflict.
                    ref = -clause
                    if data[ref] == false_literal:
                        # Normalize for conflict-analysis order.
                        data[ref] = partner
                        data[ref + 1] = false_literal
                    self._queue_head = trail_len
                    self.stats.propagations += propagated
                    return ref
                # Longer clause: the current partner is whichever watch
                # slot is not the falsified literal.
                partner = data[clause]
                if partner == false_literal:
                    partner = data[clause + 1]
                partner_value = lit_val[partner]
                if partner_value > 0:
                    # Satisfied: keep the watcher, defer the swap.
                    read += 2
                    continue
                # Normalize: partner into slot 0, false literal into 1.
                if data[clause] == false_literal:
                    data[clause] = partner
                    data[clause + 1] = false_literal
                # Look for a new literal to watch.
                stop = clause + data[clause - 1]
                k = clause + 2
                while k < stop:
                    other = data[k]
                    if lit_val[other] >= 0:
                        data[clause + 1] = other
                        data[k] = false_literal
                        moved = watches[other ^ 1]
                        moved.append(clause)
                        moved.append(partner)
                        break
                    k += 1
                else:
                    # Unit or conflicting.
                    if partner_value < 0:  # partner false too: conflict
                        self._queue_head = trail_len
                        self.stats.propagations += propagated
                        return clause
                    # Enqueue partner (inlined _enqueue).
                    lit_val[partner] = 1
                    lit_val[partner ^ 1] = -1
                    partner_var = partner >> 1
                    level[partner_var] = level_count
                    reason[partner_var] = clause
                    trail.append(partner)
                    trail_len += 1
                    read += 2
                    continue
                # First relocation: fall through to the compacting phase.
                write = read
                read += 2
                break
            else:
                continue  # phase 1 consumed the whole list
            # Phase 2: at least one pair was dropped; keep compacting the
            # tail in place with the write pointer.
            while read < end:
                clause = watch_list[read]
                if clause < 0:
                    partner = watch_list[read + 1]
                    value = lit_val[partner]
                    if value < 0:  # both literals false: conflict
                        ref = -clause
                        if data[ref] == false_literal:
                            data[ref] = partner
                            data[ref + 1] = false_literal
                        while read < end:
                            watch_list[write] = watch_list[read]
                            watch_list[write + 1] = watch_list[read + 1]
                            read += 2
                            write += 2
                        del watch_list[write:]
                        self._queue_head = trail_len
                        self.stats.propagations += propagated
                        return ref
                    if value == 0:  # implied (inlined _enqueue)
                        lit_val[partner] = 1
                        lit_val[partner ^ 1] = -1
                        partner_var = partner >> 1
                        level[partner_var] = level_count
                        reason[partner_var] = -clause
                        trail.append(partner)
                        trail_len += 1
                    watch_list[write] = clause
                    watch_list[write + 1] = partner
                    write += 2
                    read += 2
                    continue
                partner = data[clause]
                if partner == false_literal:
                    partner = data[clause + 1]
                partner_value = lit_val[partner]
                if partner_value > 0:
                    watch_list[write] = clause
                    watch_list[write + 1] = partner
                    write += 2
                    read += 2
                    continue
                if data[clause] == false_literal:
                    data[clause] = partner
                    data[clause + 1] = false_literal
                stop = clause + data[clause - 1]
                k = clause + 2
                while k < stop:
                    other = data[k]
                    if lit_val[other] >= 0:
                        data[clause + 1] = other
                        data[k] = false_literal
                        moved = watches[other ^ 1]
                        moved.append(clause)
                        moved.append(partner)
                        break
                    k += 1
                else:
                    watch_list[write] = clause
                    watch_list[write + 1] = partner
                    write += 2
                    if partner_value < 0:  # partner false too: conflict
                        read += 2
                        while read < end:
                            watch_list[write] = watch_list[read]
                            watch_list[write + 1] = watch_list[read + 1]
                            read += 2
                            write += 2
                        del watch_list[write:]
                        self._queue_head = trail_len
                        self.stats.propagations += propagated
                        return clause
                    lit_val[partner] = 1
                    lit_val[partner ^ 1] = -1
                    partner_var = partner >> 1
                    level[partner_var] = level_count
                    reason[partner_var] = clause
                    trail.append(partner)
                    trail_len += 1
                read += 2
            del watch_list[write:]
        self._queue_head = head
        self.stats.propagations += propagated
        return None

    # -- conflict analysis ------------------------------------------------

    def _bump_var(self, var):
        activity = self._activity
        bumped = activity[var] + self._var_inc
        activity[var] = bumped
        if bumped > 1e100:
            for index in range(self.num_vars):
                activity[index] *= 1e-100
            self._var_inc *= 1e-100
        order = self._order
        index = order.position.get(var)
        if index is not None:
            order._sift_up(index, activity)

    def _bump_clause(self, ref):
        activity = self._cla_activity
        slot = self._arena.data[ref - 3]
        activity[slot] += self._cla_inc
        if activity[slot] > 1e20:
            for index in range(len(activity)):
                activity[index] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict):
        """First-UIP learning. Returns (learned clause, backtrack level)."""
        data = self._arena.data
        learned = [None]  # slot 0 reserved for the asserting literal
        seen = self._seen
        level = self._level
        trail = self._trail
        reason = self._reason
        activity = self._activity
        var_inc = self._var_inc
        order = self._order
        position = order.position
        sift_up = order._sift_up
        counter = 0
        literal = None
        reason_ref = conflict
        index = len(trail) - 1
        current_level = len(self._trail_lim)
        to_clear = []

        while True:
            for k in range(reason_ref, reason_ref + data[reason_ref - 1]):
                other = data[k]
                # Skip the literal this reason implied (present in the
                # block but resolved away). Matched by value, not by
                # position: binary reasons propagate from the implication
                # lists without normalizing the implied literal to slot 0.
                if other == literal:
                    continue
                var = other >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    # _bump_var, inlined (the rescale keeps self._var_inc
                    # in sync with the local copy).
                    bumped = activity[var] + var_inc
                    activity[var] = bumped
                    if bumped > 1e100:
                        for rescaled in range(self.num_vars):
                            activity[rescaled] *= 1e-100
                        var_inc *= 1e-100
                        self._var_inc = var_inc
                    heap_index = position.get(var)
                    if heap_index is not None:
                        sift_up(heap_index, activity)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(other)
            # Select the next trail literal to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            literal = trail[index]
            index -= 1
            var = literal >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason_ref = reason[var]
        learned[0] = literal ^ 1

        # Conflict-clause minimization: drop literals implied by the rest.
        # At this point ``seen`` is True for exactly the variables of
        # ``learned[1:]`` (every resolved variable, including the UIP, was
        # cleared during the resolution loop), so it doubles as the
        # marked set without building one.
        kept = [learned[0]]
        for other in learned[1:]:
            reason_ref = reason[other >> 1]
            if reason_ref < 0:
                kept.append(other)
                continue
            negated = other ^ 1
            redundant = True
            for k in range(reason_ref, reason_ref + data[reason_ref - 1]):
                lit = data[k]
                if lit == negated:
                    continue
                var = lit >> 1
                if not seen[var] and level[var] != 0:
                    redundant = False
                    break
            if redundant:
                self.stats.minimized_literals += 1
                continue
            kept.append(other)
        learned = kept

        for var in to_clear:
            seen[var] = False

        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the second-highest level and move its literal to slot 1.
            best = 1
            for k in range(2, len(learned)):
                if level[learned[k] >> 1] > level[learned[best] >> 1]:
                    best = k
            learned[1], learned[best] = learned[best], learned[1]
            backtrack_level = level[learned[1] >> 1]
        return learned, backtrack_level

    def _backtrack(self, level):
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        trail = self._trail
        lit_val = self._lit_val
        reason = self._reason
        phase = self._phase
        pending = self._pending_detach
        order = self._order
        heap = order.heap
        position = order.position
        sift_up = order._sift_up
        activity = self._activity
        if pending:
            for internal in reversed(trail[limit:]):
                var = internal >> 1
                phase[var] = 1 - (internal & 1)
                lit_val[internal] = 0
                lit_val[internal ^ 1] = 0
                reason_ref = reason[var]
                reason[var] = _NO_REASON
                if reason_ref in pending:
                    # A deferred detach_clause: the clause just stopped
                    # being this variable's reason, so the removal is now
                    # safe.
                    pending.discard(reason_ref)
                    self._complete_detach(reason_ref)
                if var not in position:
                    position[var] = len(heap)
                    heap.append(var)
                    sift_up(len(heap) - 1, activity)
        else:
            # Common case (no deferred detaches): per-literal work only.
            for internal in reversed(trail[limit:]):
                var = internal >> 1
                phase[var] = 1 - (internal & 1)
                lit_val[internal] = 0
                lit_val[internal ^ 1] = 0
                reason[var] = _NO_REASON
                # order.push, inlined: implied variables that were never
                # popped are still on the heap and skip straight through.
                if var not in position:
                    position[var] = len(heap)
                    heap.append(var)
                    sift_up(len(heap) - 1, activity)
        del trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(trail)

    # -- learned clause database -----------------------------------------

    def _alloc_learned(self, literals):
        """Store a learned clause in the arena and watch it."""
        if self._free_slots:
            slot = self._free_slots.pop()
            self._cla_activity[slot] = 0.0
        else:
            slot = len(self._cla_activity)
            self._cla_activity.append(0.0)
        ref = self._arena.add(literals, learnt=True, slot=slot)
        self._learned_refs.append(ref)
        self._watch(ref)
        return ref

    def is_locked(self, ref):
        """True while the clause is the reason for its first literal.

        O(1): relies on the reason-block invariant (literal 0 of a reason
        block is the implied literal and cannot be displaced while the
        assignment stands). Binary clauses propagate from the implication
        lists without normalization, so either literal may be the implied
        one; both are checked.
        """
        data = self._arena.data
        lit_val = self._lit_val
        reason = self._reason
        first = data[ref]
        if lit_val[first] > 0 and reason[first >> 1] == ref:
            return True
        if data[ref - 1] == 2:
            second = data[ref + 1]
            return lit_val[second] > 0 and reason[second >> 1] == ref
        return False

    def detach_clause(self, ref):
        """Remove a clause from the solver.

        Locked clauses (currently serving as a reason) are never removed
        in place -- the request is deferred and completes when
        backtracking unassigns the implied literal, so propagation and
        conflict analysis stay sound in between. Returns True when the
        clause was removed immediately, False when deferred.
        """
        if ref in self._pending_detach:
            return False
        if self.is_locked(ref):
            self._pending_detach.add(ref)
            return False
        self._complete_detach(ref)
        return True

    def _complete_detach(self, ref):
        self._remove_watches(ref)
        if self._arena.is_learnt(ref):
            self._free_slots.append(self._arena.slot(ref))
            self._learned_refs.remove(ref)
            self._arena.mark_dead(ref)
            self.stats.deleted_clauses += 1
        else:
            self._num_problem -= 1

    def _remove_watches(self, ref):
        """Swap-pop the clause's pair out of both watch lists; never
        leaves a stale offset behind."""
        data = self._arena.data
        entry = -ref if data[ref - 1] == 2 else ref
        for literal in (data[ref], data[ref + 1]):
            pair_list = self._watches[literal ^ 1]
            for index in range(0, len(pair_list), 2):
                if pair_list[index] == entry:
                    pair_list[index] = pair_list[-2]
                    pair_list[index + 1] = pair_list[-1]
                    del pair_list[-2:]
                    break

    def _reduce_db(self):
        """Remove roughly half of the inactive learned clauses.

        The locked check is per-offset and O(1): a clause whose first
        literal is true *because of this clause* is some variable's
        reason and must survive (it will be needed by conflict analysis
        and final-conflict extraction).
        """
        arena = self._arena
        data = arena.data
        activity = self._cla_activity
        lit_val = self._lit_val
        reason = self._reason
        learned = self._learned_refs
        learned.sort(key=lambda ref: activity[data[ref - 3]])
        keep = []
        half = len(learned) // 2
        for position, ref in enumerate(learned):
            first = data[ref]
            locked = lit_val[first] > 0 and reason[first >> 1] == ref
            if position < half and data[ref - 1] > 2 and not locked:
                self._remove_watches(ref)
                self._free_slots.append(data[ref - 3])
                arena.mark_dead(ref)
                self.stats.deleted_clauses += 1
            else:
                keep.append(ref)
        self._learned_refs = keep
        if arena.wasted * 2 > len(data):
            self._collect()

    def _collect(self):
        """Compact the arena and remap every stored offset."""
        mapping = self._arena.compact()
        for watch_list in self._watches:
            for index in range(0, len(watch_list), 2):
                entry = watch_list[index]
                if entry < 0:
                    watch_list[index] = -mapping[-entry]
                else:
                    watch_list[index] = mapping[entry]
        self._reason = [
            mapping[ref] if ref >= 0 else _NO_REASON for ref in self._reason
        ]
        self._learned_refs = [mapping[ref] for ref in self._learned_refs]
        self._pending_detach = {mapping[ref] for ref in self._pending_detach}
        if self._cnf is not None:
            self._cnf.remap_refs(mapping)
        if telemetry.enabled:
            telemetry.counter_add("sat.arena_collections", engine="sat")

    # -- main search --------------------------------------------------

    def _pick_branch_literal(self):
        # ``_VarOrder.pop`` inlined: a decision typically discards several
        # already-assigned variables before finding an unassigned one, so
        # the pop loop runs hot.
        order = self._order
        heap = order.heap
        position = order.position
        sift_down = order._sift_down
        activity = self._activity
        lit_val = self._lit_val
        while heap:
            top = heap[0]
            last = heap.pop()
            del position[top]
            if heap:
                heap[0] = last
                position[last] = 0
                sift_down(0, activity)
            if lit_val[2 * top] == 0:
                return 2 * top + (1 - self._phase[top])
        return None

    def solve(self, assumptions=(), max_conflicts=None, max_work=None):
        """Search for a model.

        Args:
            assumptions: DIMACS literals temporarily forced true.
            max_conflicts: optional conflict budget.
            max_work: optional deterministic work budget (see
                :meth:`SatStats.work`).

        Returns:
            ``SAT``, ``UNSAT``, or ``UNKNOWN`` (budget exhausted).
        """
        if not self._ok:
            # Permanent root UNSAT: the hard clauses are contradictory, so
            # any assumption set (a session scope after a pop, a narrower
            # refinement round) is UNSAT too. Answer without touching the
            # search state or stats -- re-solving would spend work and,
            # with telemetry on, pollute the trail/level peak series with
            # zero-length runs -- and clear the assumption core so callers
            # read this as root-level, not assumption-driven.
            self._final_conflict = []
            return UNSAT
        if not telemetry.enabled:
            return self._search(assumptions, max_conflicts, max_work)
        before = self.stats.as_dict()
        self._deep_max_trail = 0
        self._deep_max_level = 0
        result = self._search(assumptions, max_conflicts, max_work)
        after = self.stats.as_dict()
        telemetry.record_counters(
            {key: after[key] - before[key] for key in after},
            engine="sat",
        )
        telemetry.counter_add("solver.solve_calls", engine="sat")
        telemetry.observe("sat.trail_peak", self._deep_max_trail, engine="sat")
        telemetry.observe("sat.level_peak", self._deep_max_level, engine="sat")
        return result

    def _search(self, assumptions=(), max_conflicts=None, max_work=None):
        """The CDCL search loop behind :meth:`solve`."""
        # Reset before the permanent-UNSAT check: a re-solve after a root
        # conflict must not report the previous call's assumption core.
        self._final_conflict = []
        if not self._ok:
            return UNSAT
        self._backtrack(0)  # reset any state left by a previous solve call
        internal_assumptions = [self._internal(lit) for lit in assumptions]
        for literal in internal_assumptions:
            self.grow_to((literal >> 1) + 1)

        stats = self.stats
        base_work = stats.work()
        restart_index = 0
        conflicts_total = 0
        conflict_limit = luby(restart_index) * 100
        governor = guard.active()
        deep = telemetry.enabled  # bound once: the hot loop never re-checks

        while True:
            conflict = self._propagate()
            if conflict is not None:
                stats.conflicts += 1
                conflicts_total += 1
                if deep:
                    if len(self._trail) > self._deep_max_trail:
                        self._deep_max_trail = len(self._trail)
                    if len(self._trail_lim) > self._deep_max_level:
                        self._deep_max_level = len(self._trail_lim)
                if not self._trail_lim:
                    self._ok = False
                    return UNSAT
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], _NO_REASON)
                else:
                    ref = self._alloc_learned(learned)
                    self._bump_clause(ref)
                    stats.learned_clauses += 1
                    self._enqueue(learned[0], ref)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                if max_conflicts is not None and stats.conflicts >= max_conflicts:
                    self._backtrack(0)
                    return UNKNOWN
                if max_work is not None and stats.work() - base_work >= max_work:
                    self._backtrack(0)
                    return UNKNOWN
                if governor.interrupted("sat"):
                    self._backtrack(0)
                    return UNKNOWN
                if conflicts_total >= conflict_limit:
                    conflicts_total = 0
                    restart_index += 1
                    conflict_limit = luby(restart_index) * 100
                    stats.restarts += 1
                    self._backtrack(0)
                if stats.learned_clauses > 0 and len(self._learned_refs) > max(
                    2000, 2 * self._num_problem
                ):
                    self._reduce_db()
                continue

            # No conflict: re-apply assumptions, then decide.
            decision = None
            if internal_assumptions:
                for literal in internal_assumptions[len(self._trail_lim) :]:
                    value = self._lit_val[literal]
                    if value > 0:
                        self._trail_lim.append(len(self._trail))
                        continue
                    if value < 0:
                        self._analyze_final(literal)
                        self._backtrack(0)
                        return UNSAT
                    decision = literal
                    break
            if decision is None:
                decision = self._pick_branch_literal()
                if decision is None:
                    return SAT
                stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, _NO_REASON)
            if max_work is not None and stats.work() - base_work >= max_work:
                self._backtrack(0)
                return UNKNOWN
            if governor.interrupted("sat"):
                self._backtrack(0)
                return UNKNOWN

    def _analyze_final(self, failed_literal):
        """Compute the subset of assumptions implying ``failed_literal``'s
        negation (the assumption-level unsat core)."""
        data = self._arena.data
        core = {failed_literal ^ 1}
        seen = set()
        queue = [failed_literal]
        while queue:
            literal = queue.pop()
            var = literal >> 1
            if var in seen:
                continue
            seen.add(var)
            reason_ref = self._reason[var]
            if reason_ref < 0:
                if self._level[var] > 0:
                    core.add(literal ^ 1)
            else:
                for k in range(reason_ref, reason_ref + data[reason_ref - 1]):
                    other = data[k]
                    if (other >> 1) != var and self._level[other >> 1] > 0:
                        queue.append(other ^ 1)
        self._final_conflict = sorted(self._external(lit) for lit in core)

    def final_conflict(self):
        """After an assumption-driven UNSAT: the failing assumption subset
        (negated), in DIMACS form.

        Empty after a *root-level* UNSAT: the hard clauses alone are
        contradictory and no assumption choice can restore satisfiability
        (see :meth:`okay`).
        """
        return list(self._final_conflict)

    def okay(self):
        """False once the clause database is unsatisfiable at the root.

        This is permanent: every later :meth:`solve` returns ``UNSAT``
        immediately (with an empty :meth:`final_conflict`) and
        :meth:`add_clause` refuses new clauses. Incremental users check
        this to distinguish "these assumptions failed" from "the problem
        itself is dead".
        """
        return self._ok

    def learned_count(self):
        """Learned clauses currently retained in the database.

        Clauses survive across :meth:`solve` calls (the whole point of
        incremental reuse); database reduction may delete some between
        calls, so this is a lower bound on clauses ever learned.
        """
        return len(self._learned_refs)

    def learned_refs(self):
        """Arena offsets of the retained learned clauses (a copy)."""
        return list(self._learned_refs)

    def clause_literals(self, ref):
        """A clause's literals in DIMACS form (current arena order)."""
        return self._arena.dimacs(ref)

    def model(self):
        """The satisfying assignment as a ``{var: bool}`` dict.

        Unassigned variables (possible when clauses never mention them)
        default to False.
        """
        lit_val = self._lit_val
        return {
            var: lit_val[2 * (var - 1)] > 0 for var in range(1, self.num_vars + 1)
        }

    def work(self):
        """Total deterministic work performed so far."""
        return self.stats.work()


def solve_cnf(cnf, assumptions=(), max_conflicts=None, max_work=None):
    """One-shot convenience: solve a :class:`~repro.sat.cnf.CNF`.

    Copies the clauses into a private solver (repeated calls on the same
    CNF stay byte-identical; attached solvers may reorder arena blocks).

    Returns:
        A ``(result, model, stats)`` triple; model is None unless SAT.
    """
    solver = SatSolver(cnf.num_vars)
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            return UNSAT, None, solver.stats
    result = solver.solve(
        assumptions=assumptions, max_conflicts=max_conflicts, max_work=max_work
    )
    model = solver.model() if result == SAT else None
    return result, model, solver.stats
