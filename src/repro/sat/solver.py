"""A conflict-driven clause learning (CDCL) SAT solver.

A faithful MiniSat-style architecture in pure Python:

- two-watched-literal unit propagation;
- first-UIP conflict analysis with clause minimization;
- VSIDS variable activities with a heap-backed variable order and phase
  saving;
- Luby-sequence restarts;
- learned-clause database reduction driven by clause activity and LBD;
- incremental solving under assumptions with final-conflict (unsat core)
  extraction over the assumption set;
- a deterministic work budget (propagation count) so that "timeouts" are
  reproducible across machines -- the evaluation harness uses this as its
  virtual clock.

Literals use the DIMACS convention externally (``v`` / ``-v``) and are
mapped internally to ``2*v`` / ``2*v+1``.
"""

from repro import guard, telemetry
from repro.errors import SolverError

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

_UNASSIGNED = -1


def luby(index):
    """The ``index``-th element (0-based) of the Luby restart sequence.

    The sequence is 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's
    finite-subsequence formulation).
    """
    size = 1
    sequence = 0
    while size < index + 1:
        sequence += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        sequence -= 1
        index %= size
    return 1 << sequence


class SatStats:
    """Work counters; ``work()`` is the deterministic virtual cost."""

    __slots__ = (
        "decisions",
        "propagations",
        "conflicts",
        "restarts",
        "learned_clauses",
        "deleted_clauses",
        "minimized_literals",
    )

    def __init__(self):
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.deleted_clauses = 0
        self.minimized_literals = 0

    def work(self):
        """Deterministic virtual work: propagations dominate runtime."""
        return self.propagations + 10 * self.conflicts + self.decisions

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class _VarOrder:
    """Max-heap over variable activities (MiniSat's VarOrder)."""

    def __init__(self):
        self.heap = []
        self.position = {}

    def _less(self, a, b, activity):
        return activity[a] > activity[b]

    def _swap(self, i, j):
        heap = self.heap
        heap[i], heap[j] = heap[j], heap[i]
        self.position[heap[i]] = i
        self.position[heap[j]] = j

    def _sift_up(self, index, activity):
        heap = self.heap
        while index > 0:
            parent = (index - 1) >> 1
            if self._less(heap[index], heap[parent], activity):
                self._swap(index, parent)
                index = parent
            else:
                break

    def _sift_down(self, index, activity):
        heap = self.heap
        size = len(heap)
        while True:
            left = 2 * index + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and self._less(heap[right], heap[left], activity):
                best = right
            if self._less(heap[best], heap[index], activity):
                self._swap(index, best)
                index = best
            else:
                break

    def push(self, var, activity):
        if var in self.position:
            return
        self.position[var] = len(self.heap)
        self.heap.append(var)
        self._sift_up(len(self.heap) - 1, activity)

    def pop(self, activity):
        heap = self.heap
        top = heap[0]
        last = heap.pop()
        del self.position[top]
        if heap:
            heap[0] = last
            self.position[last] = 0
            self._sift_down(0, activity)
        return top

    def update(self, var, activity):
        index = self.position.get(var)
        if index is not None:
            self._sift_up(index, activity)

    def __bool__(self):
        return bool(self.heap)


class SatSolver:
    """CDCL solver over a fixed variable universe.

    Typical use::

        solver = SatSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve(max_work=10**7)
        if result == SAT:
            model = solver.model()   # {var: bool}
    """

    def __init__(self, num_vars=0):
        self.num_vars = 0
        self._clauses = []  # problem clauses (lists of internal literals)
        self._learned = []
        self._watches = []  # literal -> list of clauses
        self._assign = []  # literal -> True/False/None (value of literal)
        self._var_value = []  # var -> _UNASSIGNED / 0 / 1
        self._level = []
        self._reason = []
        self._trail = []
        self._trail_lim = []
        self._queue_head = 0
        self._activity = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._cla_decay = 1.0 / 0.999
        self._order = _VarOrder()
        self._phase = []
        self._seen = []
        self._ok = True
        self.stats = SatStats()
        # Deep-profile peaks, tracked only while telemetry is enabled
        # (kept out of SatStats: they are observability data, not part of
        # the deterministic work/stats contract of a result).
        self._deep_max_trail = 0
        self._deep_max_level = 0
        self._conflict_budget = None
        self._work_budget = None
        self._final_conflict = []
        self.grow_to(num_vars)

    # -- variable / clause management -----------------------------------

    def grow_to(self, num_vars):
        """Ensure variables ``1..num_vars`` exist."""
        while self.num_vars < num_vars:
            self.new_var()

    def new_var(self):
        """Allocate one fresh variable; returns its index."""
        self.num_vars += 1
        var = self.num_vars
        self._watches.append([])  # positive literal watch list
        self._watches.append([])  # negative literal watch list
        self._var_value.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)
        self._seen.append(False)
        self._order.push(var - 1, self._activity)
        return var

    @staticmethod
    def _internal(literal):
        var = abs(literal) - 1
        return 2 * var + (1 if literal < 0 else 0)

    @staticmethod
    def _external(internal):
        var = (internal >> 1) + 1
        return -var if internal & 1 else var

    def _lit_value(self, internal):
        value = self._var_value[internal >> 1]
        if value == _UNASSIGNED:
            return None
        return bool(value ^ (internal & 1))

    def add_clause(self, literals):
        """Add a problem clause (DIMACS literals). Returns False if the
        solver becomes trivially unsatisfiable."""
        if not self._ok:
            return False
        if self._trail_lim:
            # Incremental use: drop any in-progress assignment first.
            self._backtrack(0)
        for literal in literals:
            self.grow_to(abs(literal))
        seen = set()
        clause = []
        for literal in literals:
            internal = self._internal(literal)
            if internal in seen:
                continue
            if internal ^ 1 in seen:
                return True  # tautology
            value = self._lit_value(internal)
            if value is True:
                return True  # already satisfied at level 0
            if value is False:
                continue  # falsified at level 0: drop the literal
            seen.add(internal)
            clause.append(internal)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def _attach(self, clause):
        self._watches[clause[0] ^ 1].append(clause)
        self._watches[clause[1] ^ 1].append(clause)

    # -- assignment and propagation --------------------------------------

    def _enqueue(self, internal, reason):
        value = self._lit_value(internal)
        if value is not None:
            return value
        var = internal >> 1
        self._var_value[var] = 0 if internal & 1 else 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(internal)
        return True

    def _propagate(self):
        """Unit propagation. Returns the conflicting clause or None.

        This is the solver's hot loop; locals are bound aggressively and
        literal values are computed inline rather than through
        ``_lit_value`` (worth ~2x wall time on large bit-blasted CNFs).
        """
        watches = self._watches
        var_value = self._var_value
        trail = self._trail
        stats = self.stats
        level_count = len(self._trail_lim)
        level = self._level
        reason = self._reason
        while self._queue_head < len(trail):
            literal = trail[self._queue_head]
            self._queue_head += 1
            stats.propagations += 1
            false_literal = literal ^ 1
            watch_list = watches[literal]
            new_list = []
            append_kept = new_list.append
            index = 0
            size = len(watch_list)
            while index < size:
                clause = watch_list[index]
                index += 1
                # Normalize: the false literal in position 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = var_value[first >> 1]
                # first is true?
                if value >= 0 and bool(value ^ (first & 1)):
                    append_kept(clause)
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    other_value = var_value[other >> 1]
                    if other_value < 0 or bool(other_value ^ (other & 1)):
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[other ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                append_kept(clause)
                if value >= 0:  # first is false: conflict
                    new_list.extend(watch_list[index:])
                    watches[literal] = new_list
                    self._queue_head = len(trail)
                    return clause
                # Enqueue first (inlined _enqueue for the common path).
                first_var = first >> 1
                var_value[first_var] = 0 if first & 1 else 1
                level[first_var] = level_count
                reason[first_var] = clause
                trail.append(first)
            watches[literal] = new_list
        return None

    # -- conflict analysis ------------------------------------------------

    def _bump_var(self, var):
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(self.num_vars):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        self._order.update(var, self._activity)

    def _bump_clause(self, clause_info):
        clause_info[1] += self._cla_inc
        if clause_info[1] > 1e20:
            for info in self._learned:
                info[1] *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict):
        """First-UIP learning. Returns (learned clause, backtrack level)."""
        learned = [None]  # slot 0 reserved for the asserting literal
        seen = self._seen
        counter = 0
        literal = None
        reason = conflict
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)
        to_clear = []

        while True:
            start = 0 if literal is None else 1
            for k in range(start, len(reason)):
                other = reason[k]
                var = other >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    to_clear.append(var)
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(other)
            # Select the next trail literal to resolve on.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            literal = self._trail[index]
            index -= 1
            var = literal >> 1
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learned[0] = literal ^ 1

        # Conflict-clause minimization: drop literals implied by the rest.
        marked = set(lit >> 1 for lit in learned[1:])
        kept = [learned[0]]
        for other in learned[1:]:
            reason = self._reason[other >> 1]
            if reason is None:
                kept.append(other)
                continue
            if all(
                (lit >> 1) in marked or self._level[lit >> 1] == 0
                for lit in reason
                if lit != (other ^ 1)
            ):
                self.stats.minimized_literals += 1
                continue
            kept.append(other)
        learned = kept

        for var in to_clear:
            seen[var] = False

        if len(learned) == 1:
            backtrack_level = 0
        else:
            # Find the second-highest level and move its literal to slot 1.
            best = 1
            for k in range(2, len(learned)):
                if self._level[learned[k] >> 1] > self._level[learned[best] >> 1]:
                    best = k
            learned[1], learned[best] = learned[best], learned[1]
            backtrack_level = self._level[learned[1] >> 1]
        return learned, backtrack_level

    def _backtrack(self, level):
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for index in range(len(self._trail) - 1, limit - 1, -1):
            internal = self._trail[index]
            var = internal >> 1
            self._phase[var] = 1 - (internal & 1)
            self._var_value[var] = _UNASSIGNED
            self._reason[var] = None
            self._order.push(var, self._activity)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # -- learned clause database -----------------------------------------

    def _reduce_db(self):
        """Remove roughly half of the inactive learned clauses."""
        self._learned.sort(key=lambda info: info[1])
        keep = []
        locked = set()
        for var in range(self.num_vars):
            reason = self._reason[var]
            if reason is not None:
                locked.add(id(reason))
        half = len(self._learned) // 2
        for position, info in enumerate(self._learned):
            clause = info[0]
            if position < half and len(clause) > 2 and id(clause) not in locked:
                self._detach(clause)
                self.stats.deleted_clauses += 1
            else:
                keep.append(info)
        self._learned = keep

    def _detach(self, clause):
        for watched in (clause[0] ^ 1, clause[1] ^ 1):
            watch_list = self._watches[watched]
            for index, candidate in enumerate(watch_list):
                if candidate is clause:
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    break

    # -- main search --------------------------------------------------

    def _pick_branch_literal(self):
        while self._order:
            var = self._order.pop(self._activity)
            if self._var_value[var] == _UNASSIGNED:
                return 2 * var + (1 - self._phase[var])
        return None

    def solve(self, assumptions=(), max_conflicts=None, max_work=None):
        """Search for a model.

        Args:
            assumptions: DIMACS literals temporarily forced true.
            max_conflicts: optional conflict budget.
            max_work: optional deterministic work budget (see
                :meth:`SatStats.work`).

        Returns:
            ``SAT``, ``UNSAT``, or ``UNKNOWN`` (budget exhausted).
        """
        if not self._ok:
            # Permanent root UNSAT: the hard clauses are contradictory, so
            # any assumption set (a session scope after a pop, a narrower
            # refinement round) is UNSAT too. Answer without touching the
            # search state or stats -- re-solving would spend work and,
            # with telemetry on, pollute the trail/level peak series with
            # zero-length runs -- and clear the assumption core so callers
            # read this as root-level, not assumption-driven.
            self._final_conflict = []
            return UNSAT
        if not telemetry.enabled:
            return self._search(assumptions, max_conflicts, max_work)
        before = self.stats.as_dict()
        self._deep_max_trail = 0
        self._deep_max_level = 0
        result = self._search(assumptions, max_conflicts, max_work)
        after = self.stats.as_dict()
        telemetry.record_counters(
            {key: after[key] - before[key] for key in after},
            engine="sat",
        )
        telemetry.counter_add("solver.solve_calls", engine="sat")
        telemetry.observe("sat.trail_peak", self._deep_max_trail, engine="sat")
        telemetry.observe("sat.level_peak", self._deep_max_level, engine="sat")
        return result

    def _search(self, assumptions=(), max_conflicts=None, max_work=None):
        """The CDCL search loop behind :meth:`solve`."""
        # Reset before the permanent-UNSAT check: a re-solve after a root
        # conflict must not report the previous call's assumption core.
        self._final_conflict = []
        if not self._ok:
            return UNSAT
        self._backtrack(0)  # reset any state left by a previous solve call
        internal_assumptions = [self._internal(lit) for lit in assumptions]
        for literal in internal_assumptions:
            self.grow_to((literal >> 1) + 1)

        base_work = self.stats.work()
        restart_index = 0
        conflicts_total = 0
        conflict_limit = luby(restart_index) * 100
        governor = guard.active()
        deep = telemetry.enabled  # bound once: the hot loop never re-checks

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_total += 1
                if deep:
                    if len(self._trail) > self._deep_max_trail:
                        self._deep_max_trail = len(self._trail)
                    if len(self._trail_lim) > self._deep_max_level:
                        self._deep_max_level = len(self._trail_lim)
                if not self._trail_lim:
                    self._ok = False
                    return UNSAT
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(backtrack_level)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    info = [learned, 0.0]
                    self._learned.append(info)
                    self._attach(learned)
                    self._bump_clause(info)
                    self.stats.learned_clauses += 1
                    self._enqueue(learned[0], learned)
                self._var_inc *= self._var_decay
                self._cla_inc *= self._cla_decay
                if max_conflicts is not None and self.stats.conflicts >= max_conflicts:
                    self._backtrack(0)
                    return UNKNOWN
                if max_work is not None and self.stats.work() - base_work >= max_work:
                    self._backtrack(0)
                    return UNKNOWN
                if governor.interrupted("sat"):
                    self._backtrack(0)
                    return UNKNOWN
                if conflicts_total >= conflict_limit:
                    conflicts_total = 0
                    restart_index += 1
                    conflict_limit = luby(restart_index) * 100
                    self.stats.restarts += 1
                    self._backtrack(0)
                if self.stats.learned_clauses > 0 and len(self._learned) > max(
                    2000, 2 * len(self._clauses)
                ):
                    self._reduce_db()
                continue

            # No conflict: re-apply assumptions, then decide.
            decision = None
            for literal in internal_assumptions[len(self._trail_lim) :]:
                value = self._lit_value(literal)
                if value is True:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value is False:
                    self._analyze_final(literal)
                    self._backtrack(0)
                    return UNSAT
                decision = literal
                break
            if decision is None:
                decision = self._pick_branch_literal()
                if decision is None:
                    return SAT
                self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)
            if max_work is not None and self.stats.work() - base_work >= max_work:
                self._backtrack(0)
                return UNKNOWN
            if governor.interrupted("sat"):
                self._backtrack(0)
                return UNKNOWN

    def _analyze_final(self, failed_literal):
        """Compute the subset of assumptions implying ``failed_literal``'s
        negation (the assumption-level unsat core)."""
        core = {failed_literal ^ 1}
        seen = set()
        queue = [failed_literal]
        while queue:
            literal = queue.pop()
            var = literal >> 1
            if var in seen:
                continue
            seen.add(var)
            reason = self._reason[var]
            if reason is None:
                if self._level[var] > 0:
                    core.add(literal ^ 1)
            else:
                for other in reason:
                    if (other >> 1) != var and self._level[other >> 1] > 0:
                        queue.append(other ^ 1)
        self._final_conflict = sorted(self._external(lit) for lit in core)

    def final_conflict(self):
        """After an assumption-driven UNSAT: the failing assumption subset
        (negated), in DIMACS form.

        Empty after a *root-level* UNSAT: the hard clauses alone are
        contradictory and no assumption choice can restore satisfiability
        (see :meth:`okay`).
        """
        return list(self._final_conflict)

    def okay(self):
        """False once the clause database is unsatisfiable at the root.

        This is permanent: every later :meth:`solve` returns ``UNSAT``
        immediately (with an empty :meth:`final_conflict`) and
        :meth:`add_clause` refuses new clauses. Incremental users check
        this to distinguish "these assumptions failed" from "the problem
        itself is dead".
        """
        return self._ok

    def learned_count(self):
        """Learned clauses currently retained in the database.

        Clauses survive across :meth:`solve` calls (the whole point of
        incremental reuse); database reduction may delete some between
        calls, so this is a lower bound on clauses ever learned.
        """
        return len(self._learned)

    def model(self):
        """The satisfying assignment as a ``{var: bool}`` dict.

        Unassigned variables (possible when clauses never mention them)
        default to False.
        """
        return {
            var: (self._var_value[var - 1] == 1)
            for var in range(1, self.num_vars + 1)
        }

    def work(self):
        """Total deterministic work performed so far."""
        return self.stats.work()


def solve_cnf(cnf, assumptions=(), max_conflicts=None, max_work=None):
    """One-shot convenience: solve a :class:`~repro.sat.cnf.CNF`.

    Returns:
        A ``(result, model, stats)`` triple; model is None unless SAT.
    """
    solver = SatSolver(cnf.num_vars)
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            return UNSAT, None, solver.stats
    result = solver.solve(
        assumptions=assumptions, max_conflicts=max_conflicts, max_work=max_work
    )
    model = solver.model() if result == SAT else None
    return result, model, solver.stats
