"""CNF formulas in DIMACS literal convention, stored in a clause arena.

Variables are positive integers ``1..num_vars``; a literal is ``v`` or
``-v``. Clauses live in a single flat :class:`~repro.sat.arena.ClauseArena`
(solver-internal literal encoding) instead of per-clause tuples; the
``clauses`` attribute is a sequence view that decodes blocks to DIMACS
tuples on access, so existing consumers (`cnf.clauses[i]`, iteration,
equality against lists of tuples) keep working while a
:class:`~repro.sat.solver.SatSolver` can attach to the arena in place and
watch the blocks without copying a single literal.

The container also provides fresh variable allocation for Tseitin
encoding and DIMACS import/export.
"""

from repro.errors import ParseError
from repro.sat.arena import ClauseArena


class _ClauseView:
    """Read-only sequence of DIMACS clause tuples over an arena.

    One view instance per CNF; it reflects the CNF's live state. Equality
    compares element-wise against any sequence of clause tuples, which is
    what the test-suite and DIMACS round-trip checks rely on.
    """

    __slots__ = ("_cnf",)

    def __init__(self, cnf):
        self._cnf = cnf

    def __len__(self):
        return len(self._cnf._refs)

    def __getitem__(self, index):
        cnf = self._cnf
        if isinstance(index, slice):
            return [cnf.arena.dimacs(ref) for ref in cnf._refs[index]]
        return cnf.arena.dimacs(cnf._refs[index])

    def __iter__(self):
        arena = self._cnf.arena
        for ref in self._cnf._refs:
            yield arena.dimacs(ref)

    def __eq__(self, other):
        if isinstance(other, _ClauseView):
            if other._cnf is self._cnf:
                return True
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        return len(self) == len(other) and all(
            mine == tuple(theirs) for mine, theirs in zip(self, other)
        )

    def __repr__(self):
        return f"_ClauseView({list(self)!r})"


class CNF:
    """A growable CNF formula backed by a clause arena.

    Attributes:
        arena: the flat clause store (internal literal encoding).
        clauses: sequence view of the clauses as DIMACS tuples.
        num_vars: highest variable index allocated or mentioned.
    """

    def __init__(self, num_vars=0):
        self.arena = ClauseArena()
        self._refs = []  # arena reference per clause, in insertion order
        self.num_vars = num_vars
        self.clauses = _ClauseView(self)

    def new_var(self):
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count):
        """Allocate ``count`` fresh variables, returned as a list."""
        base = self.num_vars
        self.num_vars = base + count
        return list(range(base + 1, base + count + 1))

    def add_clause(self, literals):
        """Add one clause; tracks ``num_vars`` automatically.

        Duplicate literals are removed; tautological clauses (containing
        both ``v`` and ``-v``) are silently dropped. Returns the clause's
        index, or None when the clause was a dropped tautology.

        Binary and ternary clauses -- the bit-blaster's gate emissions,
        i.e. nearly everything on the emit path -- take branch-only fast
        paths; the set-based scan only runs for other sizes. Both paths
        inline ``encode_literal`` and the arena block append.
        """
        if type(literals) is not list and type(literals) is not tuple:
            literals = list(literals)
        count = len(literals)
        if count == 3:
            a, b, c = literals
            if a == 0 or b == 0 or c == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if a == -b or a == -c or b == -c:
                return None  # tautology
            clause = [2 * a - 2 if a > 0 else -2 * a - 1]
            if b != a:
                clause.append(2 * b - 2 if b > 0 else -2 * b - 1)
            if c != a and c != b:
                clause.append(2 * c - 2 if c > 0 else -2 * c - 1)
            top = a if a > 0 else -a
            if b < 0:
                b = -b
            if b > top:
                top = b
            if c < 0:
                c = -c
            if c > top:
                top = c
            if top > self.num_vars:
                self.num_vars = top
        elif count == 2:
            a, b = literals
            if a == 0 or b == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if a == -b:
                return None  # tautology
            clause = [2 * a - 2 if a > 0 else -2 * a - 1]
            if b != a:
                clause.append(2 * b - 2 if b > 0 else -2 * b - 1)
            top = a if a > 0 else -a
            if b < 0:
                b = -b
            if b > top:
                top = b
            if top > self.num_vars:
                self.num_vars = top
        else:
            seen = set()
            clause = []
            num_vars = self.num_vars
            for literal in literals:
                if literal == 0:
                    raise ValueError("0 is not a valid DIMACS literal")
                if literal in seen:
                    continue
                if -literal in seen:
                    return None  # tautology
                seen.add(literal)
                if literal > 0:
                    clause.append(2 * literal - 2)
                    if literal > num_vars:
                        num_vars = literal
                else:
                    clause.append(-2 * literal - 1)
                    if -literal > num_vars:
                        num_vars = -literal
            self.num_vars = num_vars
        data = self.arena.data
        data.append(-1)  # activity slot: problem clause
        data.append(0)  # flags
        data.append(len(clause))
        reference = len(data)
        data.extend(clause)
        index = len(self._refs)
        self._refs.append(reference)
        return index

    def emit_clause(self, literals):
        """Append a clause the caller guarantees is well-formed: distinct
        non-tautological DIMACS literals over already-allocated
        variables. Used by the bit-blaster's gate emissions, whose
        const-fold guards establish exactly those properties; everything
        else goes through :meth:`add_clause`."""
        data = self.arena.data
        data.append(-1)  # activity slot: problem clause
        data.append(0)  # flags
        data.append(len(literals))
        reference = len(data)
        for literal in literals:
            data.append(2 * literal - 2 if literal > 0 else -2 * literal - 1)
        index = len(self._refs)
        self._refs.append(reference)
        return index

    def extend(self, clause_iterable):
        for clause in clause_iterable:
            self.add_clause(clause)

    def clause_ref(self, index):
        """Arena reference of clause ``index`` (for attached solvers)."""
        return self._refs[index]

    def remap_refs(self, mapping):
        """Rewrite stored references after an arena compaction."""
        self._refs = [mapping[ref] for ref in self._refs]

    def __len__(self):
        return len(self._refs)

    def __repr__(self):
        return f"CNF(vars={self.num_vars}, clauses={len(self._refs)})"


def to_dimacs(cnf):
    """Render a CNF in DIMACS ``p cnf`` format."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text):
    """Parse DIMACS CNF text into a :class:`CNF`."""
    cnf = CNF()
    declared_vars = None
    declared_clauses = None
    current = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ParseError(f"malformed DIMACS header: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(literal)
    if current:
        cnf.add_clause(current)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    if declared_clauses is not None and len(cnf.clauses) > declared_clauses:
        # Tautologies may have been dropped; fewer is fine, more is not.
        raise ParseError(
            f"DIMACS header declared {declared_clauses} clauses, found {len(cnf.clauses)}"
        )
    return cnf
