"""CNF formulas in DIMACS literal convention.

Variables are positive integers ``1..num_vars``; a literal is ``v`` or
``-v``. Clauses are tuples of literals. The container also provides fresh
variable allocation for Tseitin encoding and DIMACS import/export.
"""

from repro.errors import ParseError


class CNF:
    """A growable CNF formula.

    Attributes:
        clauses: list of clauses, each a tuple of non-zero ints.
        num_vars: highest variable index allocated or mentioned.
    """

    def __init__(self, num_vars=0):
        self.clauses = []
        self.num_vars = num_vars

    def new_var(self):
        """Allocate and return a fresh variable index."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count):
        """Allocate ``count`` fresh variables, returned as a list."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals):
        """Add one clause; tracks ``num_vars`` automatically.

        Duplicate literals are removed; tautological clauses (containing
        both ``v`` and ``-v``) are silently dropped.
        """
        seen = set()
        clause = []
        for literal in literals:
            if literal == 0:
                raise ValueError("0 is not a valid DIMACS literal")
            if literal in seen:
                continue
            if -literal in seen:
                return  # tautology
            seen.add(literal)
            clause.append(literal)
            if abs(literal) > self.num_vars:
                self.num_vars = abs(literal)
        self.clauses.append(tuple(clause))

    def extend(self, clause_iterable):
        for clause in clause_iterable:
            self.add_clause(clause)

    def __len__(self):
        return len(self.clauses)

    def __repr__(self):
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"


def to_dimacs(cnf):
    """Render a CNF in DIMACS ``p cnf`` format."""
    lines = [f"p cnf {cnf.num_vars} {len(cnf.clauses)}"]
    for clause in cnf.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def parse_dimacs(text):
    """Parse DIMACS CNF text into a :class:`CNF`."""
    cnf = CNF()
    declared_vars = None
    declared_clauses = None
    current = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ParseError(f"malformed DIMACS header: {line!r}")
            declared_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                cnf.add_clause(current)
                current = []
            else:
                current.append(literal)
    if current:
        cnf.add_clause(current)
    if declared_vars is not None:
        cnf.num_vars = max(cnf.num_vars, declared_vars)
    if declared_clauses is not None and len(cnf.clauses) > declared_clauses:
        # Tautologies may have been dropped; fewer is fine, more is not.
        raise ParseError(
            f"DIMACS header declared {declared_clauses} clauses, found {len(cnf.clauses)}"
        )
    return cnf
