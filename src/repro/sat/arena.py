"""Flat clause storage shared by the bit-blaster and the CDCL core.

A :class:`ClauseArena` packs every clause into one flat list of machine
integers: three header words followed by the literals. A *clause reference* is the arena
offset of the first literal, so the solver's hot loop reads
``data[c + k]`` without touching the header; the header sits at negative
offsets from the reference:

====================  =====================================================
``data[c - 3]``       activity slot (index into the solver's learned-clause
                      activity table; ``-1`` for problem clauses)
``data[c - 2]``       flags (bit 0: learnt, bit 1: dead / pending-detach)
``data[c - 1]``       size (number of literals)
``data[c ... c+n)``   the literals, in the solver-internal encoding
====================  =====================================================

Literals use the solver-internal encoding throughout: DIMACS literal
``v`` / ``-v`` maps to ``2*(v-1)`` / ``2*(v-1) + 1``. The helpers
:func:`encode_literal` / :func:`decode_literal` convert at the edges.

The arena is the unit of *structure sharing*: the bit-blaster emits gate
clause blocks into its CNF's arena exactly once, and a solver attached to
that CNF watches the blocks in place -- no per-clause tuple or list
objects exist anywhere on the hot path, and repeated refinement rounds
whose gate-cache entries hit reuse the recorded block offsets instead of
re-allocating the clauses. Deleted learned clauses are flagged dead and
their space reclaimed by :meth:`compact`, which returns an old-to-new
offset mapping so every offset holder (watch lists, reasons, the attached
CNF's clause index) can be remapped in one pass.
"""

#: Header flag bits (``data[c - 2]``).
FLAG_LEARNT = 1
FLAG_DEAD = 2

#: Number of header words preceding each block's literals.
HEADER_WORDS = 3


def encode_literal(literal):
    """DIMACS literal -> solver-internal literal (``2*var + sign``)."""
    if literal > 0:
        return 2 * (literal - 1)
    return 2 * (-literal - 1) + 1


def decode_literal(internal):
    """Solver-internal literal -> DIMACS literal."""
    var = (internal >> 1) + 1
    return -var if internal & 1 else var


class ClauseArena:
    """A growable flat store of clause blocks.

    Blocks are laid out contiguously and only ever appended; compaction
    (:meth:`compact`) is the single operation that moves data, and it
    hands back the offset remapping rather than mutating any holder.
    """

    __slots__ = ("data", "wasted")

    # ``data`` is a plain list rather than ``array('i')``: the hot loop is
    # read-dominated, and an array subscript boxes a fresh int object per
    # read (measured ~1.26x slower than a list subscript, which only
    # bumps a refcount). The layout and offset identity are the same
    # either way.

    def __init__(self):
        self.data = []
        self.wasted = 0

    def __len__(self):
        return len(self.data)

    def add(self, literals, learnt=False, slot=-1):
        """Append one block of internal literals; returns its reference."""
        data = self.data
        data.append(slot)
        data.append(FLAG_LEARNT if learnt else 0)
        data.append(len(literals))
        reference = len(data)
        data.extend(literals)
        return reference

    def size(self, reference):
        return self.data[reference - 1]

    def literals(self, reference):
        """The block's literals as a list (internal encoding)."""
        return self.data[reference : reference + self.data[reference - 1]]

    def dimacs(self, reference):
        """The block's literals as a tuple of DIMACS literals."""
        return tuple(decode_literal(lit) for lit in self.literals(reference))

    def slot(self, reference):
        return self.data[reference - 3]

    def set_slot(self, reference, slot):
        self.data[reference - 3] = slot

    def is_learnt(self, reference):
        return bool(self.data[reference - 2] & FLAG_LEARNT)

    def is_dead(self, reference):
        return bool(self.data[reference - 2] & FLAG_DEAD)

    def mark_dead(self, reference):
        """Flag a block deleted; its space is reclaimed by compaction."""
        flags = self.data[reference - 2]
        if not flags & FLAG_DEAD:
            self.data[reference - 2] = flags | FLAG_DEAD
            self.wasted += self.data[reference - 1] + HEADER_WORDS

    def blocks(self):
        """Yield every live block reference, in layout order."""
        data = self.data
        position = 0
        end = len(data)
        while position < end:
            reference = position + HEADER_WORDS
            size = data[reference - 1]
            if not data[reference - 2] & FLAG_DEAD:
                yield reference
            position = reference + size

    def compact(self):
        """Drop dead blocks; returns the ``{old: new}`` offset mapping.

        Live blocks keep their relative order, so any iteration keyed on
        reference order is unchanged after remapping. The caller must
        remap every stored reference (watch lists, reasons, clause
        indices) through the returned mapping before using them again.
        """
        data = self.data
        fresh = []
        mapping = {}
        position = 0
        end = len(data)
        while position < end:
            reference = position + HEADER_WORDS
            size = data[reference - 1]
            if not data[reference - 2] & FLAG_DEAD:
                mapping[reference] = len(fresh) + HEADER_WORDS
                fresh.extend(data[position : reference + size])
            position = reference + size
        self.data = fresh
        self.wasted = 0
        return mapping

    def __repr__(self):
        return f"ClauseArena(words={len(self.data)}, wasted={self.wasted})"
